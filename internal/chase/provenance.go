package chase

import (
	"fmt"
	"sort"
	"time"

	"repro/internal/cq"
	"repro/internal/instance"
	"repro/internal/logic"
	"repro/internal/mapping"
	"repro/internal/schema"
	"repro/internal/symtab"
)

// FactID indexes facts within a Provenance.
type FactID int32

// Violation is a violated ground egd: a grounding of an egd whose body
// holds in the canonical quasi-solution but whose equality fails on two
// distinct constants.
type Violation struct {
	EgdIndex int      // index into the mapping's TEgds
	Body     []FactID // ground body facts, ascending
	L, R     symtab.Value
}

// Provenance is the result of the GAV chase: the canonical quasi-solution
// together with the full support-set hypergraph and the violation set.
type Provenance struct {
	M *mapping.Mapping

	// Instance is I ∪ J: source facts plus every derived target fact
	// (the canonical quasi-solution of Definition 2 restricted to T).
	Instance *instance.Instance

	facts    []instance.Fact
	ids      map[string]FactID
	isSource []bool
	// genID maps a tuple's insertion generation in Instance to its FactID
	// (generations are dense: 1..Instance.Gen()). The chase resolves the
	// body facts of a derivation from the join's generation rank through
	// this table, avoiding a string-key map lookup per body atom.
	genID []FactID

	// supports[f] lists the support sets of fact f (Definition 4): each is
	// a sorted list of fact ids whose conjunction derives f via one ground
	// tgd. Source facts have none.
	supports [][][]FactID
	// supSeen[f] dedups support sets; it is nil while the fact has few
	// supports (linear comparison is cheaper) and materialized past a
	// threshold.
	supSeen []map[string]bool

	supArena  arena[FactID]
	valArena  arena[symtab.Value]
	rankArena arena[uint64]

	// usedIn[g] lists (fact, support-set index) pairs where g occurs, i.e.
	// the reverse hyperedges used to compute influences (Definition 7).
	usedIn [][]SupportRef

	Violations []Violation
}

// SupportRef locates one occurrence of a fact inside another fact's
// support set: Supports(Fact)[Set] contains the referencing occurrence.
type SupportRef struct {
	Fact FactID
	Set  int32
}

// NumFacts returns the number of facts (source and derived).
func (p *Provenance) NumFacts() int { return len(p.facts) }

// Fact returns the fact with the given id.
func (p *Provenance) Fact(id FactID) instance.Fact { return p.facts[id] }

// IsSource reports whether the fact is a source fact of the original input.
func (p *Provenance) IsSource(id FactID) bool { return p.isSource[id] }

// FactIDOf returns the id of a fact, if present.
func (p *Provenance) FactIDOf(f instance.Fact) (FactID, bool) {
	id, ok := p.ids[f.Key()]
	return id, ok
}

// Supports returns the support sets of a fact. The result is shared; do not
// modify.
func (p *Provenance) Supports(id FactID) [][]FactID { return p.supports[id] }

// UsedIn returns the reverse hyperedges of a fact: every (fact, set index)
// pair whose support set contains it. The result is shared; do not modify.
func (p *Provenance) UsedIn(id FactID) []SupportRef { return p.usedIn[id] }

func (p *Provenance) intern(f instance.Fact, source bool) (FactID, bool) {
	k := f.Key()
	if id, ok := p.ids[k]; ok {
		return id, false
	}
	id := FactID(len(p.facts))
	p.facts = append(p.facts, f)
	p.ids[k] = id
	p.isSource = append(p.isSource, source)
	p.supports = append(p.supports, nil)
	p.supSeen = append(p.supSeen, nil)
	p.usedIn = append(p.usedIn, nil)
	return id, true
}

// supSeenThreshold is the support count past which dedup switches from
// linear comparison to a per-fact string-key set.
const supSeenThreshold = 16

func (p *Provenance) addSupport(f FactID, set []FactID) {
	sorted := p.supArena.alloc(len(set))
	copy(sorted, set)
	// Insertion sort: support sets are tgd bodies, almost always 1-3 atoms.
	for i := 1; i < len(sorted); i++ {
		for j := i; j > 0 && sorted[j] < sorted[j-1]; j-- {
			sorted[j], sorted[j-1] = sorted[j-1], sorted[j]
		}
	}
	sups := p.supports[f]
	if seen := p.supSeen[f]; seen != nil {
		key := encodeFactIDs(sorted)
		if seen[key] {
			return
		}
		seen[key] = true
	} else {
		for _, s := range sups {
			if factIDsEqual(s, sorted) {
				return
			}
		}
		if len(sups)+1 > supSeenThreshold {
			seen = make(map[string]bool, 2*(len(sups)+1))
			for _, s := range sups {
				seen[encodeFactIDs(s)] = true
			}
			seen[encodeFactIDs(sorted)] = true
			p.supSeen[f] = seen
		}
	}
	idx := int32(len(sups))
	p.supports[f] = append(sups, sorted)
	for _, g := range sorted {
		p.usedIn[g] = append(p.usedIn[g], SupportRef{Fact: f, Set: idx})
	}
}

func factIDsEqual(a, b []FactID) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// arena bump-allocates small slices out of shared chunks, amortizing the
// per-slice heap allocation of the chase's firing records and support sets.
// Allocated slices stay valid for the arena's lifetime; nothing is freed.
type arena[T any] struct{ cur []T }

func (a *arena[T]) alloc(n int) []T {
	const chunk = 1 << 14
	if len(a.cur)+n > cap(a.cur) {
		c := chunk
		if n > c {
			c = n
		}
		a.cur = make([]T, 0, c)
	}
	s := a.cur[len(a.cur) : len(a.cur)+n : len(a.cur)+n]
	a.cur = a.cur[:len(a.cur)+n]
	return s
}

func encodeFactIDs(ids []FactID) string {
	b := make([]byte, 0, 4*len(ids))
	for _, id := range ids {
		b = append(b, byte(id), byte(id>>8), byte(id>>16), byte(id>>24))
	}
	return string(b)
}

// GAV runs the datalog chase of src with the GAV mapping m, recording every
// ground derivation and every egd violation. It returns an error if m is not
// gav+(gav, egd).
func GAV(m *mapping.Mapping, src *instance.Instance) (*Provenance, error) {
	return GAVWithOptions(m, src, Options{})
}

// GAVWithOptions is GAV with an explicit strategy and stats sink.
//
// Under the default semi-naive strategy, a tgd is re-evaluated only when a
// body relation gained facts since the tgd's watermark, and each evaluation
// enumerates only the ground derivations using at least one such delta
// fact. Every derivation is new exactly once (when its newest body fact
// is), so the support-set hypergraph is complete (every support set of
// Definition 4 is recorded), as with the naive fixpoint whose final full
// pass enumerates every derivation valid in the final instance. Applying
// each evaluation's firings in generation-rank order makes interning order,
// support order, and violations byte-identical to the naive strategy.
func GAVWithOptions(m *mapping.Mapping, src *instance.Instance, opt Options) (*Provenance, error) {
	if !m.IsGAV() {
		return nil, fmt.Errorf("chase: GAV chase requires a gav+(gav, egd) mapping")
	}
	st := opt.Stats
	if st == nil {
		st = &Stats{}
	}
	naive := opt.Strategy == StrategyNaive
	p := &Provenance{
		M:        m,
		Instance: src.Clone(),
		ids:      make(map[string]FactID, src.Len()*4),
	}
	p.genID = make([]FactID, p.Instance.Gen()+1)
	for _, f := range src.Facts() {
		id, _ := p.intern(f, true)
		g, ok := p.Instance.GenOf(f.Rel, f.Args)
		if !ok {
			panic("chase: source fact missing from cloned instance")
		}
		p.genID[g] = id
	}

	tgds := m.AllTgds()
	execs := make([]*gavExec, len(tgds))
	for i, d := range tgds {
		execs[i] = compileGAV(d)
	}
	t0 := time.Now()
	for round := 0; ; round++ {
		if round > maxRounds {
			return nil, fmt.Errorf("chase: GAV chase did not terminate after %d rounds", maxRounds)
		}
		st.Rounds++
		grew := false
		evaluated := false
		for _, ge := range execs {
			ev, added := p.applyGAVTGD(ge, naive, st)
			evaluated = evaluated || ev
			grew = grew || added
		}
		if naive {
			if !grew {
				break
			}
		} else if !evaluated {
			break
		}
	}
	st.TgdDuration += time.Since(t0)
	t0 = time.Now()
	p.findViolations()
	st.ViolationDuration += time.Since(t0)
	return p, nil
}

// gavExec is one compiled GAV tgd: a reusable body plan, the head and body
// instantiation templates, the body relation set for the dependency index,
// and the semi-naive watermark. GAV heads have no existential variables, so
// the head template only references environment slots and constants.
type gavExec struct {
	d         *logic.TGD
	plan      *cq.Plan
	bodyRels  []schema.RelID
	watermark uint64
	started   bool // evaluated at least once (watermark is meaningful)

	headRel    schema.RelID
	headConsts []symtab.Value
	headSlot   []int
	numBody    int

	firings []gavFiring // scratch, reused across evaluations
}

type gavFiring struct {
	args []symtab.Value
	rank []uint64 // body-tuple gens per atom; resolved to FactIDs at apply time
}

func compileGAV(d *logic.TGD) *gavExec {
	ge := &gavExec{d: d, plan: cq.Compile(d.Body)}
	ge.bodyRels = ge.plan.Relations()
	head := d.Head[0]
	ge.headRel = head.Rel
	ge.headConsts = make([]symtab.Value, len(head.Terms))
	ge.headSlot = make([]int, len(head.Terms))
	for j, t := range head.Terms {
		if t.IsVar() {
			ge.headSlot[j] = ge.plan.VarSlot[t.Var]
		} else {
			ge.headSlot[j] = -1
			ge.headConsts[j] = t.Val
		}
	}
	ge.numBody = len(d.Body)
	return ge
}

func (ge *gavExec) hasDelta(work *instance.Instance) bool {
	if !ge.started {
		return true
	}
	for _, r := range ge.bodyRels {
		if work.RelGen(r) > ge.watermark {
			return true
		}
	}
	return false
}

// applyGAVTGD enumerates the (delta) body matches over the current
// instance, derives head facts, and records support sets. It reports
// whether the rule was evaluated and whether any new fact was added.
func (p *Provenance) applyGAVTGD(ge *gavExec, naive bool, st *Stats) (evaluated, added bool) {
	old := ge.watermark
	if naive {
		old = 0
	} else if !ge.hasDelta(p.Instance) {
		st.RuleSkips++
		return false, false
	}
	cur := p.Instance.Gen()
	st.RuleEvals++
	ge.started = true
	firings := ge.firings[:0]
	var evalOrder []int
	ge.plan.ForEachDelta(p.Instance, old, func(env []symtab.Value, rank []uint64, order []int) bool {
		evalOrder = order
		args := p.valArena.alloc(len(ge.headConsts))
		for j := range args {
			if s := ge.headSlot[j]; s >= 0 {
				args[j] = env[s]
			} else {
				args[j] = ge.headConsts[j]
			}
		}
		r := p.rankArena.alloc(len(rank))
		copy(r, rank)
		firings = append(firings, gavFiring{args: args, rank: r})
		return true
	})
	ge.watermark = cur
	sort.Slice(firings, func(i, j int) bool { return rankLess(firings[i].rank, firings[j].rank, evalOrder) })
	ge.firings = firings
	body := make([]FactID, ge.numBody)
	for _, fr := range firings {
		st.Triggers++
		f := instance.Fact{Rel: ge.headRel, Args: fr.args}
		gen, isNew := p.Instance.AddWithGen(f.Rel, f.Args)
		var id FactID
		if isNew {
			added = true
			st.DeltaFacts++
			id, _ = p.intern(f, false)
			if int(gen) != len(p.genID) {
				panic("chase: generation/fact-id tables out of sync")
			}
			p.genID = append(p.genID, id)
		} else {
			id = p.genID[gen]
		}
		// The matched body tuples are identified by their generations; all
		// existed before this evaluation, so their ids are in the table.
		self := false
		for i, g := range fr.rank {
			b := p.genID[g]
			body[i] = b
			// Self-supports (a fact deriving itself) carry no information
			// for closures/influence and would create spurious cycles.
			if b == id {
				self = true
			}
		}
		if !self {
			p.addSupport(id, body)
		}
	}
	return true, added
}

// findViolations enumerates violated ground egds over the final instance.
func (p *Provenance) findViolations() {
	for ei, d := range p.M.TEgds {
		plan := cq.Compile(d.Body)
		plan.ForEach(p.Instance, func(env []symtab.Value) bool {
			l := egdSide(d.L, plan, env)
			r := egdSide(d.R, plan, env)
			if l == r {
				return true
			}
			body := make([]FactID, len(d.Body))
			for i, a := range d.Body {
				bargs := make([]symtab.Value, len(a.Terms))
				for j, t := range a.Terms {
					if t.IsVar() {
						bargs[j] = env[plan.VarSlot[t.Var]]
					} else {
						bargs[j] = t.Val
					}
				}
				id, ok := p.ids[instance.Fact{Rel: a.Rel, Args: bargs}.Key()]
				if !ok {
					panic("chase: violation body fact not interned")
				}
				body[i] = id
			}
			sort.Slice(body, func(i, j int) bool { return body[i] < body[j] })
			p.Violations = append(p.Violations, Violation{EgdIndex: ei, Body: body, L: l, R: r})
			return true
		})
	}
	// Dedup violations that ground to the same body and equality (e.g. from
	// symmetric matches of the same egd).
	seen := make(map[string]bool, len(p.Violations))
	uniq := p.Violations[:0]
	for _, v := range p.Violations {
		l, r := v.L, v.R
		if l > r {
			l, r = r, l
		}
		key := fmt.Sprintf("%d|%s|%d|%d", v.EgdIndex, encodeFactIDs(v.Body), l, r)
		if seen[key] {
			continue
		}
		seen[key] = true
		uniq = append(uniq, v)
	}
	p.Violations = uniq
}

// SupportClosure returns the support closure of the given facts
// (Definition 4): the least set containing seed and, for every member g,
// every fact belonging to a support set of g.
func (p *Provenance) SupportClosure(seed []FactID) map[FactID]bool {
	closure := make(map[FactID]bool)
	stack := append([]FactID(nil), seed...)
	for _, f := range seed {
		closure[f] = true
	}
	for len(stack) > 0 {
		f := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, set := range p.supports[f] {
			for _, g := range set {
				if !closure[g] {
					closure[g] = true
					stack = append(stack, g)
				}
			}
		}
	}
	return closure
}

// Influence returns the influence of the given fact set (Definition 7): the
// least superset E' of seed such that whenever g ∈ E', every fact with a
// support set containing g is also in E'.
func (p *Provenance) Influence(seed map[FactID]bool) map[FactID]bool {
	infl := make(map[FactID]bool, len(seed))
	var stack []FactID
	for f := range seed {
		infl[f] = true
		stack = append(stack, f)
	}
	for len(stack) > 0 {
		g := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, ref := range p.usedIn[g] {
			if !infl[ref.Fact] {
				infl[ref.Fact] = true
				stack = append(stack, ref.Fact)
			}
		}
	}
	return infl
}

// SafeDerivable returns the set of facts derivable using only facts outside
// `excluded`: source facts not excluded are derivable; a derived fact is
// derivable if it is not excluded and some support set is entirely
// derivable. This equals chase(I \ excluded-source-facts) by monotonicity,
// computed on the hypergraph without re-chasing.
func (p *Provenance) SafeDerivable(excluded map[FactID]bool) map[FactID]bool {
	derivable := make(map[FactID]bool)
	// Count per (fact, support set) how many members are pending; fire when 0.
	type setState struct{ pending int }
	states := make([][]setState, len(p.facts))
	var queue []FactID
	for id := range p.facts {
		f := FactID(id)
		states[id] = make([]setState, len(p.supports[id]))
		for si, set := range p.supports[id] {
			states[id][si].pending = len(set)
		}
		if p.isSource[id] && !excluded[f] {
			derivable[f] = true
			queue = append(queue, f)
		}
	}
	for len(queue) > 0 {
		g := queue[len(queue)-1]
		queue = queue[:len(queue)-1]
		for _, ref := range p.usedIn[g] {
			st := &states[ref.Fact][ref.Set]
			st.pending--
			if st.pending == 0 && !derivable[ref.Fact] && !excluded[ref.Fact] {
				derivable[ref.Fact] = true
				queue = append(queue, ref.Fact)
			}
		}
	}
	return derivable
}
