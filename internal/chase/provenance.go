package chase

import (
	"fmt"
	"sort"

	"repro/internal/cq"
	"repro/internal/instance"
	"repro/internal/logic"
	"repro/internal/mapping"
	"repro/internal/symtab"
)

// FactID indexes facts within a Provenance.
type FactID int32

// Violation is a violated ground egd: a grounding of an egd whose body
// holds in the canonical quasi-solution but whose equality fails on two
// distinct constants.
type Violation struct {
	EgdIndex int      // index into the mapping's TEgds
	Body     []FactID // ground body facts, ascending
	L, R     symtab.Value
}

// Provenance is the result of the GAV chase: the canonical quasi-solution
// together with the full support-set hypergraph and the violation set.
type Provenance struct {
	M *mapping.Mapping

	// Instance is I ∪ J: source facts plus every derived target fact
	// (the canonical quasi-solution of Definition 2 restricted to T).
	Instance *instance.Instance

	facts    []instance.Fact
	ids      map[string]FactID
	isSource []bool

	// supports[f] lists the support sets of fact f (Definition 4): each is
	// a sorted list of fact ids whose conjunction derives f via one ground
	// tgd. Source facts have none.
	supports [][][]FactID
	supSeen  []map[string]bool

	// usedIn[g] lists (fact, support-set index) pairs where g occurs, i.e.
	// the reverse hyperedges used to compute influences (Definition 7).
	usedIn [][]SupportRef

	Violations []Violation
}

// SupportRef locates one occurrence of a fact inside another fact's
// support set: Supports(Fact)[Set] contains the referencing occurrence.
type SupportRef struct {
	Fact FactID
	Set  int32
}

// NumFacts returns the number of facts (source and derived).
func (p *Provenance) NumFacts() int { return len(p.facts) }

// Fact returns the fact with the given id.
func (p *Provenance) Fact(id FactID) instance.Fact { return p.facts[id] }

// IsSource reports whether the fact is a source fact of the original input.
func (p *Provenance) IsSource(id FactID) bool { return p.isSource[id] }

// FactIDOf returns the id of a fact, if present.
func (p *Provenance) FactIDOf(f instance.Fact) (FactID, bool) {
	id, ok := p.ids[f.Key()]
	return id, ok
}

// Supports returns the support sets of a fact. The result is shared; do not
// modify.
func (p *Provenance) Supports(id FactID) [][]FactID { return p.supports[id] }

// UsedIn returns the reverse hyperedges of a fact: every (fact, set index)
// pair whose support set contains it. The result is shared; do not modify.
func (p *Provenance) UsedIn(id FactID) []SupportRef { return p.usedIn[id] }

func (p *Provenance) intern(f instance.Fact, source bool) (FactID, bool) {
	k := f.Key()
	if id, ok := p.ids[k]; ok {
		return id, false
	}
	id := FactID(len(p.facts))
	p.facts = append(p.facts, f)
	p.ids[k] = id
	p.isSource = append(p.isSource, source)
	p.supports = append(p.supports, nil)
	p.supSeen = append(p.supSeen, nil)
	p.usedIn = append(p.usedIn, nil)
	return id, true
}

func (p *Provenance) addSupport(f FactID, set []FactID) {
	sorted := append([]FactID(nil), set...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	key := encodeFactIDs(sorted)
	if p.supSeen[f] == nil {
		p.supSeen[f] = make(map[string]bool)
	}
	if p.supSeen[f][key] {
		return
	}
	p.supSeen[f][key] = true
	idx := int32(len(p.supports[f]))
	p.supports[f] = append(p.supports[f], sorted)
	for _, g := range sorted {
		p.usedIn[g] = append(p.usedIn[g], SupportRef{Fact: f, Set: idx})
	}
}

func encodeFactIDs(ids []FactID) string {
	b := make([]byte, 0, 4*len(ids))
	for _, id := range ids {
		b = append(b, byte(id), byte(id>>8), byte(id>>16), byte(id>>24))
	}
	return string(b)
}

// GAV runs the datalog chase of src with the GAV mapping m, recording every
// ground derivation and every egd violation. It returns an error if m is not
// gav+(gav, egd).
//
// The chase iterates full rule passes until a pass adds no new facts; since
// fact sets grow monotonically, the final pass enumerates every ground
// derivation valid in the final instance, so the support-set hypergraph is
// complete (every support set of Definition 4 is recorded).
func GAV(m *mapping.Mapping, src *instance.Instance) (*Provenance, error) {
	if !m.IsGAV() {
		return nil, fmt.Errorf("chase: GAV chase requires a gav+(gav, egd) mapping")
	}
	p := &Provenance{
		M:        m,
		Instance: src.Clone(),
		ids:      make(map[string]FactID, src.Len()*2),
	}
	for _, f := range src.Facts() {
		p.intern(f, true)
	}

	tgds := m.AllTgds()
	for round := 0; ; round++ {
		if round > maxRounds {
			return nil, fmt.Errorf("chase: GAV chase did not terminate after %d rounds", maxRounds)
		}
		grew := false
		for _, d := range tgds {
			if p.applyGAVTGD(d) {
				grew = true
			}
		}
		if !grew {
			break
		}
	}
	p.findViolations()
	return p, nil
}

// applyGAVTGD enumerates all body matches over the current instance,
// derives head facts, and records support sets. Reports whether any new
// fact was added.
func (p *Provenance) applyGAVTGD(d *logic.TGD) bool {
	head := d.Head[0]
	plan := cq.Compile(d.Body, p.Instance)
	type firing struct {
		args []symtab.Value
		body []FactID
	}
	var firings []firing
	plan.ForEach(p.Instance, func(env []symtab.Value) bool {
		args := make([]symtab.Value, len(head.Terms))
		for i, t := range head.Terms {
			if t.IsVar() {
				args[i] = env[plan.VarSlot[t.Var]]
			} else {
				args[i] = t.Val
			}
		}
		body := make([]FactID, len(d.Body))
		for i, a := range d.Body {
			bargs := make([]symtab.Value, len(a.Terms))
			for j, t := range a.Terms {
				if t.IsVar() {
					bargs[j] = env[plan.VarSlot[t.Var]]
				} else {
					bargs[j] = t.Val
				}
			}
			id, ok := p.ids[instance.Fact{Rel: a.Rel, Args: bargs}.Key()]
			if !ok {
				panic("chase: body fact not interned")
			}
			body[i] = id
		}
		firings = append(firings, firing{args: args, body: body})
		return true
	})
	added := false
	for _, fr := range firings {
		f := instance.Fact{Rel: head.Rel, Args: fr.args}
		if p.Instance.AddFact(f) {
			added = true
		}
		id, _ := p.intern(f, false)
		// Self-supports (a fact deriving itself) carry no information for
		// closures/influence and would create spurious cycles; skip them.
		self := false
		for _, b := range fr.body {
			if b == id {
				self = true
				break
			}
		}
		if !self {
			p.addSupport(id, fr.body)
		}
	}
	return added
}

// findViolations enumerates violated ground egds over the final instance.
func (p *Provenance) findViolations() {
	for ei, d := range p.M.TEgds {
		plan := cq.Compile(d.Body, p.Instance)
		plan.ForEach(p.Instance, func(env []symtab.Value) bool {
			l := egdSide(d.L, plan, env)
			r := egdSide(d.R, plan, env)
			if l == r {
				return true
			}
			body := make([]FactID, len(d.Body))
			for i, a := range d.Body {
				bargs := make([]symtab.Value, len(a.Terms))
				for j, t := range a.Terms {
					if t.IsVar() {
						bargs[j] = env[plan.VarSlot[t.Var]]
					} else {
						bargs[j] = t.Val
					}
				}
				id, ok := p.ids[instance.Fact{Rel: a.Rel, Args: bargs}.Key()]
				if !ok {
					panic("chase: violation body fact not interned")
				}
				body[i] = id
			}
			sort.Slice(body, func(i, j int) bool { return body[i] < body[j] })
			p.Violations = append(p.Violations, Violation{EgdIndex: ei, Body: body, L: l, R: r})
			return true
		})
	}
	// Dedup violations that ground to the same body and equality (e.g. from
	// symmetric matches of the same egd).
	seen := make(map[string]bool, len(p.Violations))
	uniq := p.Violations[:0]
	for _, v := range p.Violations {
		l, r := v.L, v.R
		if l > r {
			l, r = r, l
		}
		key := fmt.Sprintf("%d|%s|%d|%d", v.EgdIndex, encodeFactIDs(v.Body), l, r)
		if seen[key] {
			continue
		}
		seen[key] = true
		uniq = append(uniq, v)
	}
	p.Violations = uniq
}

// SupportClosure returns the support closure of the given facts
// (Definition 4): the least set containing seed and, for every member g,
// every fact belonging to a support set of g.
func (p *Provenance) SupportClosure(seed []FactID) map[FactID]bool {
	closure := make(map[FactID]bool)
	stack := append([]FactID(nil), seed...)
	for _, f := range seed {
		closure[f] = true
	}
	for len(stack) > 0 {
		f := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, set := range p.supports[f] {
			for _, g := range set {
				if !closure[g] {
					closure[g] = true
					stack = append(stack, g)
				}
			}
		}
	}
	return closure
}

// Influence returns the influence of the given fact set (Definition 7): the
// least superset E' of seed such that whenever g ∈ E', every fact with a
// support set containing g is also in E'.
func (p *Provenance) Influence(seed map[FactID]bool) map[FactID]bool {
	infl := make(map[FactID]bool, len(seed))
	var stack []FactID
	for f := range seed {
		infl[f] = true
		stack = append(stack, f)
	}
	for len(stack) > 0 {
		g := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, ref := range p.usedIn[g] {
			if !infl[ref.Fact] {
				infl[ref.Fact] = true
				stack = append(stack, ref.Fact)
			}
		}
	}
	return infl
}

// SafeDerivable returns the set of facts derivable using only facts outside
// `excluded`: source facts not excluded are derivable; a derived fact is
// derivable if it is not excluded and some support set is entirely
// derivable. This equals chase(I \ excluded-source-facts) by monotonicity,
// computed on the hypergraph without re-chasing.
func (p *Provenance) SafeDerivable(excluded map[FactID]bool) map[FactID]bool {
	derivable := make(map[FactID]bool)
	// Count per (fact, support set) how many members are pending; fire when 0.
	type setState struct{ pending int }
	states := make([][]setState, len(p.facts))
	var queue []FactID
	for id := range p.facts {
		f := FactID(id)
		states[id] = make([]setState, len(p.supports[id]))
		for si, set := range p.supports[id] {
			states[id][si].pending = len(set)
		}
		if p.isSource[id] && !excluded[f] {
			derivable[f] = true
			queue = append(queue, f)
		}
	}
	for len(queue) > 0 {
		g := queue[len(queue)-1]
		queue = queue[:len(queue)-1]
		for _, ref := range p.usedIn[g] {
			st := &states[ref.Fact][ref.Set]
			st.pending--
			if st.pending == 0 && !derivable[ref.Fact] && !excluded[ref.Fact] {
				derivable[ref.Fact] = true
				queue = append(queue, ref.Fact)
			}
		}
	}
	return derivable
}
