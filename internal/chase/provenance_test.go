package chase

import (
	"testing"

	"repro/internal/instance"
	"repro/internal/logic"
)

// gavWorld builds the running example used across provenance tests:
//
//	P(x,y) -> P'(x,y)       Q(x,y) -> Q'(x,y)
//	P'(x,y) & Q'(y,z) -> R'(x,y,z)
//	egd: P'(x,y) & P'(x,y2) -> y = y2   (key on P')
func gavWorld() *tw {
	w := newTW()
	p := w.srcRel("P", 2)
	q := w.srcRel("Q", 2)
	pp := w.tgtRel("P1", 2)
	qq := w.tgtRel("Q1", 2)
	rr := w.tgtRel("R1", 3)
	w.m.ST = []*logic.TGD{
		{Body: []logic.Atom{logic.NewAtom(w.cat, p, logic.V("x"), logic.V("y"))},
			Head: []logic.Atom{logic.NewAtom(w.cat, pp, logic.V("x"), logic.V("y"))}},
		{Body: []logic.Atom{logic.NewAtom(w.cat, q, logic.V("x"), logic.V("y"))},
			Head: []logic.Atom{logic.NewAtom(w.cat, qq, logic.V("x"), logic.V("y"))}},
	}
	w.m.TTgds = []*logic.TGD{
		{Body: []logic.Atom{logic.NewAtom(w.cat, pp, logic.V("x"), logic.V("y")), logic.NewAtom(w.cat, qq, logic.V("y"), logic.V("z"))},
			Head: []logic.Atom{logic.NewAtom(w.cat, rr, logic.V("x"), logic.V("y"), logic.V("z"))}},
	}
	w.m.TEgds = []*logic.EGD{{
		Body: []logic.Atom{
			logic.NewAtom(w.cat, pp, logic.V("x"), logic.V("y")),
			logic.NewAtom(w.cat, pp, logic.V("x"), logic.V("y2")),
		},
		L: logic.V("y"), R: logic.V("y2"),
	}}
	return w
}

func TestGAVRequiresGAVMapping(t *testing.T) {
	w := newTW()
	r := w.srcRel("R", 1)
	s := w.tgtRel("S", 2)
	w.m.ST = []*logic.TGD{{
		Body: []logic.Atom{logic.NewAtom(w.cat, r, logic.V("x"))},
		Head: []logic.Atom{logic.NewAtom(w.cat, s, logic.V("x"), logic.V("z"))},
	}}
	if _, err := GAV(w.m, w.src); err == nil {
		t.Fatal("non-GAV mapping accepted")
	}
}

func TestGAVChaseDerivesAndRecordsSupports(t *testing.T) {
	w := gavWorld()
	p, _ := w.cat.ByName("P")
	q, _ := w.cat.ByName("Q")
	pp, _ := w.cat.ByName("P1")
	rr, _ := w.cat.ByName("R1")

	w.add(p, "a", "b")
	w.add(q, "b", "c")

	prov, err := GAV(w.m, w.src)
	if err != nil {
		t.Fatal(err)
	}
	if !prov.Instance.Contains(rr.ID, w.vals("a", "b", "c")) {
		t.Fatal("R1(a,b,c) not derived")
	}
	// Support of P1(a,b) is {P(a,b)}.
	ppID, ok := prov.FactIDOf(instance.Fact{Rel: pp.ID, Args: w.vals("a", "b")})
	if !ok {
		t.Fatal("P1(a,b) not interned")
	}
	sets := prov.Supports(ppID)
	if len(sets) != 1 || len(sets[0]) != 1 {
		t.Fatalf("P1(a,b) supports = %v", sets)
	}
	if got := prov.Fact(sets[0][0]); got.Rel != p.ID {
		t.Fatal("support of P1(a,b) is not P(a,b)")
	}
	// Support of R1(a,b,c) is {P1(a,b), Q1(b,c)}.
	rrID, ok := prov.FactIDOf(instance.Fact{Rel: rr.ID, Args: w.vals("a", "b", "c")})
	if !ok {
		t.Fatal("R1 fact missing")
	}
	rsets := prov.Supports(rrID)
	if len(rsets) != 1 || len(rsets[0]) != 2 {
		t.Fatalf("R1 supports = %v", rsets)
	}
	// Source facts have no supports.
	pID, _ := prov.FactIDOf(instance.Fact{Rel: p.ID, Args: w.vals("a", "b")})
	if len(prov.Supports(pID)) != 0 {
		t.Fatal("source fact has supports")
	}
	if !prov.IsSource(pID) || prov.IsSource(rrID) {
		t.Fatal("IsSource flags wrong")
	}
}

func TestGAVChaseViolations(t *testing.T) {
	w := gavWorld()
	p, _ := w.cat.ByName("P")
	w.add(p, "a", "b")
	w.add(p, "a", "c")

	prov, err := GAV(w.m, w.src)
	if err != nil {
		t.Fatal(err)
	}
	if len(prov.Violations) != 1 {
		t.Fatalf("violations = %d, want 1 (after symmetric dedup)", len(prov.Violations))
	}
	v := prov.Violations[0]
	if len(v.Body) != 2 {
		t.Fatalf("violation body size = %d", len(v.Body))
	}
	if v.L == v.R {
		t.Fatal("violation with equal sides")
	}
}

func TestGAVChaseNoViolationsOnConsistent(t *testing.T) {
	w := gavWorld()
	p, _ := w.cat.ByName("P")
	q, _ := w.cat.ByName("Q")
	w.add(p, "a", "b")
	w.add(q, "b", "c")
	prov, err := GAV(w.m, w.src)
	if err != nil {
		t.Fatal(err)
	}
	if len(prov.Violations) != 0 {
		t.Fatalf("violations = %d, want 0", len(prov.Violations))
	}
}

func TestSupportClosure(t *testing.T) {
	w := gavWorld()
	p, _ := w.cat.ByName("P")
	q, _ := w.cat.ByName("Q")
	rr, _ := w.cat.ByName("R1")
	w.add(p, "a", "b")
	w.add(q, "b", "c")
	prov, err := GAV(w.m, w.src)
	if err != nil {
		t.Fatal(err)
	}
	rrID, _ := prov.FactIDOf(instance.Fact{Rel: rr.ID, Args: w.vals("a", "b", "c")})
	closure := prov.SupportClosure([]FactID{rrID})
	// Closure: R1(a,b,c), P1(a,b), Q1(b,c), P(a,b), Q(b,c) = 5 facts.
	if len(closure) != 5 {
		t.Fatalf("closure size = %d, want 5", len(closure))
	}
}

func TestInfluence(t *testing.T) {
	w := gavWorld()
	p, _ := w.cat.ByName("P")
	q, _ := w.cat.ByName("Q")
	rr, _ := w.cat.ByName("R1")
	w.add(p, "a", "b")
	w.add(q, "b", "c")
	w.add(q, "x", "y") // unrelated
	prov, err := GAV(w.m, w.src)
	if err != nil {
		t.Fatal(err)
	}
	pID, _ := prov.FactIDOf(instance.Fact{Rel: p.ID, Args: w.vals("a", "b")})
	infl := prov.Influence(map[FactID]bool{pID: true})
	// Influence of P(a,b): itself, P1(a,b), R1(a,b,c) = 3 facts.
	if len(infl) != 3 {
		t.Fatalf("influence size = %d, want 3", len(infl))
	}
	rrID, _ := prov.FactIDOf(instance.Fact{Rel: rr.ID, Args: w.vals("a", "b", "c")})
	if !infl[rrID] {
		t.Fatal("influence misses R1(a,b,c)")
	}
}

func TestSafeDerivable(t *testing.T) {
	w := gavWorld()
	p, _ := w.cat.ByName("P")
	q, _ := w.cat.ByName("Q")
	pp, _ := w.cat.ByName("P1")
	rr, _ := w.cat.ByName("R1")
	w.add(p, "a", "b")
	w.add(q, "b", "c")
	prov, err := GAV(w.m, w.src)
	if err != nil {
		t.Fatal(err)
	}
	pID, _ := prov.FactIDOf(instance.Fact{Rel: p.ID, Args: w.vals("a", "b")})
	qID, _ := prov.FactIDOf(instance.Fact{Rel: q.ID, Args: w.vals("b", "c")})
	ppID, _ := prov.FactIDOf(instance.Fact{Rel: pp.ID, Args: w.vals("a", "b")})
	rrID, _ := prov.FactIDOf(instance.Fact{Rel: rr.ID, Args: w.vals("a", "b", "c")})

	// Excluding P(a,b) kills P1(a,b) and R1(a,b,c) but not Q-side facts.
	d := prov.SafeDerivable(map[FactID]bool{pID: true})
	if d[pID] || d[ppID] || d[rrID] {
		t.Fatal("excluded fact or its consequences derivable")
	}
	if !d[qID] {
		t.Fatal("unrelated source fact not derivable")
	}
	// Excluding nothing: everything derivable.
	all := prov.SafeDerivable(nil)
	if len(all) != prov.NumFacts() {
		t.Fatalf("derivable = %d, want all %d", len(all), prov.NumFacts())
	}
}

func TestGAVChaseMultipleSupportSets(t *testing.T) {
	// Two rules derive the same fact: both support sets must be recorded.
	w := newTW()
	a := w.srcRel("A", 1)
	b := w.srcRel("B", 1)
	tt := w.tgtRel("T", 1)
	w.m.ST = []*logic.TGD{
		{Body: []logic.Atom{logic.NewAtom(w.cat, a, logic.V("x"))},
			Head: []logic.Atom{logic.NewAtom(w.cat, tt, logic.V("x"))}},
		{Body: []logic.Atom{logic.NewAtom(w.cat, b, logic.V("x"))},
			Head: []logic.Atom{logic.NewAtom(w.cat, tt, logic.V("x"))}},
	}
	w.add(a, "v")
	w.add(b, "v")
	prov, err := GAV(w.m, w.src)
	if err != nil {
		t.Fatal(err)
	}
	ttRel, _ := w.cat.ByName("T")
	id, _ := prov.FactIDOf(instance.Fact{Rel: ttRel.ID, Args: w.vals("v")})
	if got := len(prov.Supports(id)); got != 2 {
		t.Fatalf("support sets = %d, want 2", got)
	}
	// With A(v) excluded, T(v) still derivable through B(v).
	aRel, _ := w.cat.ByName("A")
	aID, _ := prov.FactIDOf(instance.Fact{Rel: aRel.ID, Args: w.vals("v")})
	d := prov.SafeDerivable(map[FactID]bool{aID: true})
	if !d[id] {
		t.Fatal("fact with an alternative derivation not derivable")
	}
}

func TestGAVChaseRecursiveRules(t *testing.T) {
	// Transitive closure via target tgds; supports recorded for every
	// derivation found in the final pass.
	w := newTW()
	r := w.srcRel("R", 2)
	e := w.tgtRel("E", 2)
	tc := w.tgtRel("TC", 2)
	w.m.ST = []*logic.TGD{{
		Body: []logic.Atom{logic.NewAtom(w.cat, r, logic.V("x"), logic.V("y"))},
		Head: []logic.Atom{logic.NewAtom(w.cat, e, logic.V("x"), logic.V("y"))},
	}}
	w.m.TTgds = []*logic.TGD{
		{Body: []logic.Atom{logic.NewAtom(w.cat, e, logic.V("x"), logic.V("y"))},
			Head: []logic.Atom{logic.NewAtom(w.cat, tc, logic.V("x"), logic.V("y"))}},
		{Body: []logic.Atom{logic.NewAtom(w.cat, tc, logic.V("x"), logic.V("y")), logic.NewAtom(w.cat, tc, logic.V("y"), logic.V("z"))},
			Head: []logic.Atom{logic.NewAtom(w.cat, tc, logic.V("x"), logic.V("z"))}},
	}
	w.add(r, "a", "b")
	w.add(r, "b", "c")
	w.add(r, "c", "d")
	prov, err := GAV(w.m, w.src)
	if err != nil {
		t.Fatal(err)
	}
	if prov.Instance.LenOf(tc.ID) != 6 {
		t.Fatalf("TC size = %d", prov.Instance.LenOf(tc.ID))
	}
	// TC(a,c) has supports {TC(a,b),TC(b,c)} (and only that one besides).
	id, _ := prov.FactIDOf(instance.Fact{Rel: tc.ID, Args: w.vals("a", "c")})
	if len(prov.Supports(id)) == 0 {
		t.Fatal("recursive derivation unrecorded")
	}
	// Excluding R(b,c) must kill TC(a,c), TC(b,c), TC(b,d), TC(a,d)... wait:
	// TC(a,d) could go a->b->c->d only through (b,c); so it dies too.
	rID, _ := prov.FactIDOf(instance.Fact{Rel: r.ID, Args: w.vals("b", "c")})
	d := prov.SafeDerivable(map[FactID]bool{rID: true})
	acID, _ := prov.FactIDOf(instance.Fact{Rel: tc.ID, Args: w.vals("a", "c")})
	abID, _ := prov.FactIDOf(instance.Fact{Rel: tc.ID, Args: w.vals("a", "b")})
	if d[acID] {
		t.Fatal("TC(a,c) derivable without R(b,c)")
	}
	if !d[abID] {
		t.Fatal("TC(a,b) not derivable")
	}
}
