package chase

import (
	"math/rand"
	"testing"

	"repro/internal/gavreduce"
	"repro/internal/genome"
	"repro/internal/instance"
	"repro/internal/testkit"
)

// provEqual asserts byte-identical provenance output between the semi-naive
// and naive strategies: same facts in the same interning order, same source
// flags, same support sets in the same order, and same violations.
func provEqual(t *testing.T, label string, a, b *Provenance) {
	t.Helper()
	if a.NumFacts() != b.NumFacts() {
		t.Fatalf("%s: fact counts differ: %d vs %d", label, a.NumFacts(), b.NumFacts())
	}
	for id := 0; id < a.NumFacts(); id++ {
		f := FactID(id)
		fa, fb := a.Fact(f), b.Fact(f)
		if fa.Rel != fb.Rel || len(fa.Args) != len(fb.Args) {
			t.Fatalf("%s: fact %d differs: %v vs %v", label, id, fa, fb)
		}
		for i := range fa.Args {
			if fa.Args[i] != fb.Args[i] {
				t.Fatalf("%s: fact %d args differ: %v vs %v", label, id, fa, fb)
			}
		}
		if a.IsSource(f) != b.IsSource(f) {
			t.Fatalf("%s: fact %d source flag differs", label, id)
		}
		sa, sb := a.Supports(f), b.Supports(f)
		if len(sa) != len(sb) {
			t.Fatalf("%s: fact %d has %d vs %d support sets", label, id, len(sa), len(sb))
		}
		for si := range sa {
			if !factIDsEqual(sa[si], sb[si]) {
				t.Fatalf("%s: fact %d support %d differs: %v vs %v", label, id, si, sa[si], sb[si])
			}
		}
	}
	if len(a.Violations) != len(b.Violations) {
		t.Fatalf("%s: violation counts differ: %d vs %d", label, len(a.Violations), len(b.Violations))
	}
	for i := range a.Violations {
		va, vb := a.Violations[i], b.Violations[i]
		if va.EgdIndex != vb.EgdIndex || va.L != vb.L || va.R != vb.R || !factIDsEqual(va.Body, vb.Body) {
			t.Fatalf("%s: violation %d differs: %+v vs %+v", label, i, va, vb)
		}
	}
}

// TestGAVStrategyEquivalenceGenome cross-checks the semi-naive GAV chase
// against the retained naive fixpoint on genome S- and M-sized profiles at
// 0%, 9%, and 20% suspect rates, asserting byte-identical provenance
// (facts, interning order, support hypergraph, violations).
func TestGAVStrategyEquivalenceGenome(t *testing.T) {
	w, err := genome.NewWorld()
	if err != nil {
		t.Fatal(err)
	}
	red, err := gavreduce.Reduce(w.M)
	if err != nil {
		t.Fatal(err)
	}
	profiles := []genome.Profile{
		{Name: "S0", Transcripts: 35, SuspectRate: 0.00, Seed: 9101},
		{Name: "S9", Transcripts: 35, SuspectRate: 0.09, Seed: 9102},
		{Name: "S20", Transcripts: 35, SuspectRate: 0.20, Seed: 9103},
		{Name: "M0", Transcripts: 360, SuspectRate: 0.00, Seed: 9104},
		{Name: "M9", Transcripts: 360, SuspectRate: 0.09, Seed: 9105},
		{Name: "M20", Transcripts: 360, SuspectRate: 0.20, Seed: 9106},
	}
	for _, p := range profiles {
		if testing.Short() && p.Transcripts > 100 {
			continue
		}
		src := genome.Generate(w, p)
		var stSemi, stNaive Stats
		semi, err := GAVWithOptions(red.M, src, Options{Stats: &stSemi})
		if err != nil {
			t.Fatalf("%s: semi-naive: %v", p.Name, err)
		}
		naive, err := GAVWithOptions(red.M, src, Options{Strategy: StrategyNaive, Stats: &stNaive})
		if err != nil {
			t.Fatalf("%s: naive: %v", p.Name, err)
		}
		provEqual(t, p.Name, semi, naive)
		if !semi.Instance.Equal(naive.Instance) {
			t.Fatalf("%s: instances differ", p.Name)
		}
		if stSemi.Triggers > stNaive.Triggers {
			t.Fatalf("%s: semi-naive fired more triggers (%d) than naive (%d)", p.Name, stSemi.Triggers, stNaive.Triggers)
		}
	}
}

// TestNativeStrategyEquivalenceGenome runs the native (GLAV, null-inventing)
// chase under both strategies on genome profiles and asserts the resulting
// instances are fact-for-fact identical in insertion order — the semi-naive
// driver must preserve the naive trigger order, fresh-null numbering, and
// egd merge outcomes exactly.
func TestNativeStrategyEquivalenceGenome(t *testing.T) {
	// Fresh nulls are numbered by a stateful counter in the universe, so each
	// strategy gets its own identically-constructed world: value numbering is
	// then deterministic per world and directly comparable across the two.
	w1, err := genome.NewWorld()
	if err != nil {
		t.Fatal(err)
	}
	w2, err := genome.NewWorld()
	if err != nil {
		t.Fatal(err)
	}
	profiles := []genome.Profile{
		{Name: "S0", Transcripts: 35, SuspectRate: 0.00, Seed: 9201},
		{Name: "S9", Transcripts: 35, SuspectRate: 0.09, Seed: 9202},
		{Name: "S20", Transcripts: 35, SuspectRate: 0.20, Seed: 9203},
	}
	for _, p := range profiles {
		semi, errS := NativeWithOptions(w1.M, genome.Generate(w1, p), Options{})
		naive, errN := NativeWithOptions(w2.M, genome.Generate(w2, p), Options{Strategy: StrategyNaive})
		if (errS == nil) != (errN == nil) {
			t.Fatalf("%s: strategies disagree on error: %v vs %v", p.Name, errS, errN)
		}
		if errS != nil {
			continue
		}
		instancesIdentical(t, p.Name, semi, naive)
	}
}

// instancesIdentical asserts fact-for-fact identity including enumeration
// order (Equal alone would accept permuted insertion orders).
func instancesIdentical(t *testing.T, label string, a, b *instance.Instance) {
	t.Helper()
	fa, fb := a.Facts(), b.Facts()
	if len(fa) != len(fb) {
		t.Fatalf("%s: fact counts differ: %d vs %d", label, len(fa), len(fb))
	}
	for i := range fa {
		if fa[i].Rel != fb[i].Rel || len(fa[i].Args) != len(fb[i].Args) {
			t.Fatalf("%s: fact %d differs", label, i)
		}
		for j := range fa[i].Args {
			if fa[i].Args[j] != fb[i].Args[j] {
				t.Fatalf("%s: fact %d arg %d differs", label, i, j)
			}
		}
	}
}

// TestChaseStrategyEquivalenceProperty cross-checks both chase drivers on
// random weakly-acyclic mappings: the native chase (existentials + egds)
// must produce identical instances, and on GAV-shaped mappings the
// provenance output must be byte-identical.
func TestChaseStrategyEquivalenceProperty(t *testing.T) {
	// Each trial builds the same random world twice from identically-seeded
	// generators, one per strategy: fresh-null numbering is stateful in the
	// universe, so sharing one world would shift the second run's nulls.
	for trial := 0; trial < 60; trial++ {
		seed := int64(4242 + trial)
		build := func() (*testkit.World, *instance.Instance) {
			rng := rand.New(rand.NewSource(seed))
			w := testkit.RandomMapping(rng, testkit.Options{Existentials: trial%2 == 0, TargetTgds: 1 + trial%2, Egds: 1 + trial%3})
			return w, testkit.RandomInstance(rng, w, 5+rng.Intn(8), 3)
		}
		w1, src1 := build()
		w2, src2 := build()

		semi, errS := NativeWithOptions(w1.M, src1, Options{})
		naive, errN := NativeWithOptions(w2.M, src2, Options{Strategy: StrategyNaive})
		if (errS == nil) != (errN == nil) {
			t.Fatalf("trial %d: strategies disagree on error: %v vs %v", trial, errS, errN)
		}
		if errS == nil {
			instancesIdentical(t, "native", semi, naive)
		}

		if !w1.M.IsGAV() {
			continue
		}
		pSemi, errS := GAV(w1.M, src1)
		pNaive, errN := GAVWithOptions(w2.M, src2, Options{Strategy: StrategyNaive})
		if (errS == nil) != (errN == nil) {
			t.Fatalf("trial %d: GAV strategies disagree on error: %v vs %v", trial, errS, errN)
		}
		if errS == nil {
			provEqual(t, "gav", pSemi, pNaive)
		}
	}
}
