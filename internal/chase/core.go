package chase

import (
	"repro/internal/instance"
	"repro/internal/symtab"
)

// Core computes the core of an instance with labeled nulls: the smallest
// sub-instance that is a homomorphic retract (Fagin, Kolaitis, Popa,
// "Data exchange: getting to the core"). Cores of universal solutions are
// the preferred materialization targets in data exchange — they are unique
// up to isomorphism and contain no redundant nulls.
//
// The algorithm iteratively looks for a proper retraction: a homomorphism
// from the instance into itself whose image omits at least one null (by
// mapping that null to some other value while fixing constants). This is
// exponential in the worst case and intended for modest instances.
func Core(in *instance.Instance) *instance.Instance {
	cur := in.Clone()
	for {
		retract, ok := properRetraction(cur)
		if !ok {
			return cur
		}
		cur = instance.ApplyValueMap(cur, retract)
	}
}

// properRetraction searches for a homomorphism h of cur into itself with
// h(n) ≠ n for at least one null n. Returns the value map if found.
func properRetraction(cur *instance.Instance) (map[symtab.Value]symtab.Value, bool) {
	nulls := cur.Nulls()
	for _, n := range nulls {
		// Try to fold n onto each other domain value.
		for v := range cur.ActiveDomain() {
			if v == n {
				continue
			}
			// Seed the homomorphism with n ↦ v and try to extend it to a
			// full endomorphism.
			if h, ok := extendEndomorphism(cur, n, v); ok {
				return h, true
			}
		}
	}
	return nil, false
}

// extendEndomorphism checks whether the map {seed ↦ img} extends to a
// homomorphism cur → cur, reusing the instance homomorphism search on a
// copy where the seed null has been replaced.
func extendEndomorphism(cur *instance.Instance, seed, img symtab.Value) (map[symtab.Value]symtab.Value, bool) {
	folded := instance.ApplyValueMap(cur, map[symtab.Value]symtab.Value{seed: img})
	h, ok := instance.Homomorphism(folded, cur)
	if !ok {
		return nil, false
	}
	// Compose: seed ↦ img, then h on the rest.
	out := map[symtab.Value]symtab.Value{seed: img}
	if to, ok := h[img]; ok {
		out[seed] = to
	}
	for from, to := range h {
		out[from] = to
	}
	return out, true
}
