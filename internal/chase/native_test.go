package chase

import (
	"errors"
	"testing"

	"repro/internal/instance"
	"repro/internal/logic"
	"repro/internal/mapping"
	"repro/internal/schema"
	"repro/internal/symtab"
)

// buildMapping assembles a mapping over fresh catalog/universe via a setup
// callback for brevity in tests.
type tw struct {
	cat *schema.Catalog
	u   *symtab.Universe
	m   *mapping.Mapping
	src *instance.Instance
}

func newTW() *tw {
	cat := schema.NewCatalog()
	u := symtab.NewUniverse()
	return &tw{cat: cat, u: u, m: mapping.New(cat, u), src: instance.New(cat)}
}

func (w *tw) srcRel(name string, arity int) *schema.Relation {
	r := w.cat.MustAdd(name, arity)
	w.m.Source.Add(r)
	return r
}

func (w *tw) tgtRel(name string, arity int) *schema.Relation {
	r := w.cat.MustAdd(name, arity)
	w.m.Target.Add(r)
	return r
}

func (w *tw) add(r *schema.Relation, vals ...string) {
	args := make([]symtab.Value, len(vals))
	for i, v := range vals {
		args[i] = w.u.Const(v)
	}
	w.src.Add(r.ID, args)
}

func (w *tw) vals(vals ...string) []symtab.Value {
	args := make([]symtab.Value, len(vals))
	for i, v := range vals {
		args[i] = w.u.Const(v)
	}
	return args
}

func TestNativeCopyMapping(t *testing.T) {
	w := newTW()
	r := w.srcRel("R", 2)
	s := w.tgtRel("S", 2)
	w.m.ST = []*logic.TGD{{
		Body: []logic.Atom{logic.NewAtom(w.cat, r, logic.V("x"), logic.V("y"))},
		Head: []logic.Atom{logic.NewAtom(w.cat, s, logic.V("x"), logic.V("y"))},
	}}
	w.add(r, "a", "b")
	w.add(r, "b", "c")

	res, err := Native(w.m, w.src)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Contains(s.ID, w.vals("a", "b")) || !res.Contains(s.ID, w.vals("b", "c")) {
		t.Fatal("copied facts missing")
	}
	if res.LenOf(s.ID) != 2 {
		t.Fatalf("S has %d facts", res.LenOf(s.ID))
	}
}

func TestNativeExistentialCreatesNull(t *testing.T) {
	w := newTW()
	r := w.srcRel("R", 1)
	s := w.tgtRel("S", 2)
	// R(x) -> ∃z S(x,z)
	w.m.ST = []*logic.TGD{{
		Body: []logic.Atom{logic.NewAtom(w.cat, r, logic.V("x"))},
		Head: []logic.Atom{logic.NewAtom(w.cat, s, logic.V("x"), logic.V("z"))},
	}}
	w.add(r, "a")
	res, err := Native(w.m, w.src)
	if err != nil {
		t.Fatal(err)
	}
	tuples := res.Tuples(s.ID)
	if len(tuples) != 1 {
		t.Fatalf("S has %d tuples", len(tuples))
	}
	if !tuples[0][1].IsNull() {
		t.Fatal("existential position is not a null")
	}
	// Restricted chase: re-running adds nothing (head already satisfied).
	res2, err := Native(w.m, w.src)
	if err != nil {
		t.Fatal(err)
	}
	if res2.LenOf(s.ID) != 1 {
		t.Fatalf("second chase created extra nulls: %d", res2.LenOf(s.ID))
	}
}

func TestNativeEGDMergesNullWithConstant(t *testing.T) {
	w := newTW()
	r := w.srcRel("R", 1)
	p := w.srcRel("P", 2)
	s := w.tgtRel("S", 2)
	// R(x) -> ∃z S(x,z);  P(x,y) -> S(x,y);  S(x,y) & S(x,y') -> y = y'
	w.m.ST = []*logic.TGD{
		{Body: []logic.Atom{logic.NewAtom(w.cat, r, logic.V("x"))},
			Head: []logic.Atom{logic.NewAtom(w.cat, s, logic.V("x"), logic.V("z"))}},
		{Body: []logic.Atom{logic.NewAtom(w.cat, p, logic.V("x"), logic.V("y"))},
			Head: []logic.Atom{logic.NewAtom(w.cat, s, logic.V("x"), logic.V("y"))}},
	}
	w.m.TEgds = []*logic.EGD{{
		Body: []logic.Atom{
			logic.NewAtom(w.cat, s, logic.V("x"), logic.V("y")),
			logic.NewAtom(w.cat, s, logic.V("x"), logic.V("y2")),
		},
		L: logic.V("y"), R: logic.V("y2"),
	}}
	w.add(r, "a")
	w.add(p, "a", "b")

	res, err := Native(w.m, w.src)
	if err != nil {
		t.Fatal(err)
	}
	// The null must have merged into b, leaving exactly S(a,b).
	if res.LenOf(s.ID) != 1 || !res.Contains(s.ID, w.vals("a", "b")) {
		t.Fatalf("merge failed: %s", res.String(w.u))
	}
}

func TestNativeEGDConstantConflict(t *testing.T) {
	w := newTW()
	p := w.srcRel("P", 2)
	s := w.tgtRel("S", 2)
	w.m.ST = []*logic.TGD{{
		Body: []logic.Atom{logic.NewAtom(w.cat, p, logic.V("x"), logic.V("y"))},
		Head: []logic.Atom{logic.NewAtom(w.cat, s, logic.V("x"), logic.V("y"))},
	}}
	w.m.TEgds = []*logic.EGD{{
		Body: []logic.Atom{
			logic.NewAtom(w.cat, s, logic.V("x"), logic.V("y")),
			logic.NewAtom(w.cat, s, logic.V("x"), logic.V("y2")),
		},
		L: logic.V("y"), R: logic.V("y2"),
	}}
	w.add(p, "a", "b")
	w.add(p, "a", "c")

	if _, err := Native(w.m, w.src); !errors.Is(err, ErrNoSolution) {
		t.Fatalf("err = %v, want ErrNoSolution", err)
	}
	if HasSolution(w.m, w.src) {
		t.Fatal("HasSolution = true for inconsistent instance")
	}
}

func TestNativeEGDMergesTwoNulls(t *testing.T) {
	w := newTW()
	r := w.srcRel("R", 1)
	q := w.srcRel("Q", 2)
	s := w.tgtRel("S", 2)
	link := w.tgtRel("L", 2)
	// R(x) -> ∃z S(x,z); Q(x,y) -> L(x,y);
	// L(x,y) & S(x,u) & S(y,v) -> u = v  (cluster mates share the null)
	w.m.ST = []*logic.TGD{
		{Body: []logic.Atom{logic.NewAtom(w.cat, r, logic.V("x"))},
			Head: []logic.Atom{logic.NewAtom(w.cat, s, logic.V("x"), logic.V("z"))}},
		{Body: []logic.Atom{logic.NewAtom(w.cat, q, logic.V("x"), logic.V("y"))},
			Head: []logic.Atom{logic.NewAtom(w.cat, link, logic.V("x"), logic.V("y"))}},
	}
	w.m.TEgds = []*logic.EGD{{
		Body: []logic.Atom{
			logic.NewAtom(w.cat, link, logic.V("x"), logic.V("y")),
			logic.NewAtom(w.cat, s, logic.V("x"), logic.V("u")),
			logic.NewAtom(w.cat, s, logic.V("y"), logic.V("v")),
		},
		L: logic.V("u"), R: logic.V("v"),
	}}
	w.add(r, "a")
	w.add(r, "b")
	w.add(r, "c")
	w.add(q, "a", "b")

	res, err := Native(w.m, w.src)
	if err != nil {
		t.Fatal(err)
	}
	tupA := res.Match(s.ID, []symtab.Value{w.u.Const("a"), symtab.None})
	tupB := res.Match(s.ID, []symtab.Value{w.u.Const("b"), symtab.None})
	tupC := res.Match(s.ID, []symtab.Value{w.u.Const("c"), symtab.None})
	if len(tupA) != 1 || len(tupB) != 1 || len(tupC) != 1 {
		t.Fatalf("expected one S tuple per source element")
	}
	if tupA[0][1] != tupB[0][1] {
		t.Fatal("a and b cluster nulls not merged")
	}
	if tupA[0][1] == tupC[0][1] {
		t.Fatal("c's null merged spuriously")
	}
}

func TestNativeTargetTgd(t *testing.T) {
	w := newTW()
	r := w.srcRel("R", 2)
	e := w.tgtRel("E", 2)
	tc := w.tgtRel("TC", 2)
	w.m.ST = []*logic.TGD{{
		Body: []logic.Atom{logic.NewAtom(w.cat, r, logic.V("x"), logic.V("y"))},
		Head: []logic.Atom{logic.NewAtom(w.cat, e, logic.V("x"), logic.V("y"))},
	}}
	// transitive closure: E(x,y) -> TC(x,y); TC(x,y) & E(y,z) -> TC(x,z)
	w.m.TTgds = []*logic.TGD{
		{Body: []logic.Atom{logic.NewAtom(w.cat, e, logic.V("x"), logic.V("y"))},
			Head: []logic.Atom{logic.NewAtom(w.cat, tc, logic.V("x"), logic.V("y"))}},
		{Body: []logic.Atom{logic.NewAtom(w.cat, tc, logic.V("x"), logic.V("y")), logic.NewAtom(w.cat, e, logic.V("y"), logic.V("z"))},
			Head: []logic.Atom{logic.NewAtom(w.cat, tc, logic.V("x"), logic.V("z"))}},
	}
	w.add(r, "a", "b")
	w.add(r, "b", "c")
	w.add(r, "c", "d")
	res, err := Native(w.m, w.src)
	if err != nil {
		t.Fatal(err)
	}
	if res.LenOf(tc.ID) != 6 {
		t.Fatalf("TC has %d facts, want 6", res.LenOf(tc.ID))
	}
	if !res.Contains(tc.ID, w.vals("a", "d")) {
		t.Fatal("TC(a,d) missing")
	}
}

func TestNativeUniversality(t *testing.T) {
	// The canonical solution must have a homomorphism into any other solution.
	w := newTW()
	r := w.srcRel("R", 1)
	s := w.tgtRel("S", 2)
	w.m.ST = []*logic.TGD{{
		Body: []logic.Atom{logic.NewAtom(w.cat, r, logic.V("x"))},
		Head: []logic.Atom{logic.NewAtom(w.cat, s, logic.V("x"), logic.V("z"))},
	}}
	w.add(r, "a")
	res, err := Native(w.m, w.src)
	if err != nil {
		t.Fatal(err)
	}
	canonical := res.Restrict(schema.NewSchema(w.cat.ByID(s.ID)))

	other := instance.New(w.cat)
	other.Add(s.ID, w.vals("a", "b"))
	if _, ok := instance.Homomorphism(canonical, other); !ok {
		t.Fatal("no homomorphism from canonical solution into another solution")
	}
}

func TestNativeNonTerminatingGuard(t *testing.T) {
	// E(x,y) -> E(y,z) is not weakly acyclic; the chase must abort with an
	// error rather than loop forever.
	w := newTW()
	r := w.srcRel("R", 2)
	e := w.tgtRel("E", 2)
	w.m.ST = []*logic.TGD{{
		Body: []logic.Atom{logic.NewAtom(w.cat, r, logic.V("x"), logic.V("y"))},
		Head: []logic.Atom{logic.NewAtom(w.cat, e, logic.V("x"), logic.V("y"))},
	}}
	w.m.TTgds = []*logic.TGD{{
		Body: []logic.Atom{logic.NewAtom(w.cat, e, logic.V("x"), logic.V("y"))},
		Head: []logic.Atom{logic.NewAtom(w.cat, e, logic.V("y"), logic.V("z"))},
	}}
	w.add(r, "a", "b")
	if _, err := Native(w.m, w.src); err == nil {
		t.Fatal("non-terminating chase did not error")
	}
}

func TestNativeEgdOnSourceValuesViaTargets(t *testing.T) {
	// Egd equating two constants propagated through separate tgds.
	w := newTW()
	p := w.srcRel("P", 2)
	q := w.srcRel("Q", 2)
	s := w.tgtRel("S", 2)
	u := w.tgtRel("U", 2)
	w.m.ST = []*logic.TGD{
		{Body: []logic.Atom{logic.NewAtom(w.cat, p, logic.V("x"), logic.V("y"))},
			Head: []logic.Atom{logic.NewAtom(w.cat, s, logic.V("x"), logic.V("y"))}},
		{Body: []logic.Atom{logic.NewAtom(w.cat, q, logic.V("x"), logic.V("y"))},
			Head: []logic.Atom{logic.NewAtom(w.cat, u, logic.V("x"), logic.V("y"))}},
	}
	w.m.TEgds = []*logic.EGD{{
		Body: []logic.Atom{
			logic.NewAtom(w.cat, s, logic.V("k"), logic.V("a")),
			logic.NewAtom(w.cat, u, logic.V("k"), logic.V("b")),
		},
		L: logic.V("a"), R: logic.V("b"),
	}}
	w.add(p, "k1", "v")
	w.add(q, "k1", "v") // equal: fine
	if !HasSolution(w.m, w.src) {
		t.Fatal("consistent cross-relation egd rejected")
	}
	w.add(q, "k1", "w") // now forced v = w
	if HasSolution(w.m, w.src) {
		t.Fatal("conflicting cross-relation egd accepted")
	}
}
