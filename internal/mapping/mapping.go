// Package mapping defines schema mappings M = (S, T, Σst, Σt) as in the
// paper: a source schema, a target schema, a set of source-to-target tgds,
// and a set of target tgds and egds.
package mapping

import (
	"fmt"

	"repro/internal/logic"
	"repro/internal/schema"
	"repro/internal/symtab"
)

// Mapping is a schema mapping M = (S, T, Σst, Σt).
// The catalog and universe are shared with instances over the mapping.
type Mapping struct {
	Cat    *schema.Catalog
	U      *symtab.Universe
	Source *schema.Schema
	Target *schema.Schema

	ST    []*logic.TGD // source-to-target tgds
	TTgds []*logic.TGD // target tgds
	TEgds []*logic.EGD // target egds
}

// New returns an empty mapping over fresh source/target schemas.
func New(cat *schema.Catalog, u *symtab.Universe) *Mapping {
	return &Mapping{
		Cat:    cat,
		U:      u,
		Source: schema.NewSchema(),
		Target: schema.NewSchema(),
	}
}

// Validate checks that the mapping is well-formed: schemas are disjoint,
// s-t tgds go from source to target, target dependencies stay in the target,
// and every dependency is structurally valid.
func (m *Mapping) Validate() error {
	if !m.Source.Disjoint(m.Target) {
		return fmt.Errorf("mapping: source and target schemas overlap")
	}
	for _, d := range m.ST {
		if err := d.Validate(); err != nil {
			return err
		}
		for _, a := range d.Body {
			if !m.Source.Contains(a.Rel) {
				return fmt.Errorf("mapping: s-t tgd %s has non-source body atom %s", d.Label, m.Cat.ByID(a.Rel).Name)
			}
		}
		for _, a := range d.Head {
			if !m.Target.Contains(a.Rel) {
				return fmt.Errorf("mapping: s-t tgd %s has non-target head atom %s", d.Label, m.Cat.ByID(a.Rel).Name)
			}
		}
	}
	for _, d := range m.TTgds {
		if err := d.Validate(); err != nil {
			return err
		}
		for _, a := range append(append([]logic.Atom{}, d.Body...), d.Head...) {
			if !m.Target.Contains(a.Rel) {
				return fmt.Errorf("mapping: target tgd %s mentions non-target relation %s", d.Label, m.Cat.ByID(a.Rel).Name)
			}
		}
	}
	for _, d := range m.TEgds {
		if err := d.Validate(); err != nil {
			return err
		}
		for _, a := range d.Body {
			if !m.Target.Contains(a.Rel) {
				return fmt.Errorf("mapping: target egd %s mentions non-target relation %s", d.Label, m.Cat.ByID(a.Rel).Name)
			}
		}
	}
	return nil
}

// IsGAV reports whether the mapping is gav+(gav, egd): all s-t tgds and all
// target tgds are GAV constraints.
func (m *Mapping) IsGAV() bool {
	for _, d := range m.ST {
		if !d.IsGAV() {
			return false
		}
	}
	for _, d := range m.TTgds {
		if !d.IsGAV() {
			return false
		}
	}
	return true
}

// IsWeaklyAcyclic reports whether the set of target tgds is weakly acyclic.
func (m *Mapping) IsWeaklyAcyclic() bool {
	return logic.WeaklyAcyclic(m.TTgds)
}

// AllTgds returns Σst ∪ Σt-tgds (s-t tgds first).
func (m *Mapping) AllTgds() []*logic.TGD {
	out := make([]*logic.TGD, 0, len(m.ST)+len(m.TTgds))
	out = append(out, m.ST...)
	out = append(out, m.TTgds...)
	return out
}

// WithoutEgds returns M^tgd, the mapping with all egds dropped (Def. 2).
// The returned mapping shares catalog, universe, schemas and tgd slices.
func (m *Mapping) WithoutEgds() *Mapping {
	return &Mapping{
		Cat: m.Cat, U: m.U,
		Source: m.Source, Target: m.Target,
		ST: m.ST, TTgds: m.TTgds,
	}
}

// Stats summarizes the mapping size (used by the reduction-blowup experiment).
type Stats struct {
	STTgds, TargetTgds, TargetEgds int
}

// Stats returns dependency counts.
func (m *Mapping) Stats() Stats {
	return Stats{STTgds: len(m.ST), TargetTgds: len(m.TTgds), TargetEgds: len(m.TEgds)}
}

func (s Stats) String() string {
	return fmt.Sprintf("%d s-t tgds, %d target tgds, %d egds", s.STTgds, s.TargetTgds, s.TargetEgds)
}
