package mapping

import (
	"testing"

	"repro/internal/logic"
	"repro/internal/schema"
	"repro/internal/symtab"
)

func fixture() (*schema.Catalog, *symtab.Universe, *Mapping, *schema.Relation, *schema.Relation) {
	cat := schema.NewCatalog()
	u := symtab.NewUniverse()
	m := New(cat, u)
	r := cat.MustAdd("R", 2)
	s := cat.MustAdd("S", 2)
	m.Source.Add(r)
	m.Target.Add(s)
	return cat, u, m, r, s
}

func TestValidateGood(t *testing.T) {
	cat, _, m, r, s := fixture()
	m.ST = []*logic.TGD{{
		Body: []logic.Atom{logic.NewAtom(cat, r, logic.V("x"), logic.V("y"))},
		Head: []logic.Atom{logic.NewAtom(cat, s, logic.V("x"), logic.V("y"))},
	}}
	m.TEgds = []*logic.EGD{{
		Body: []logic.Atom{
			logic.NewAtom(cat, s, logic.V("x"), logic.V("y")),
			logic.NewAtom(cat, s, logic.V("x"), logic.V("z")),
		},
		L: logic.V("y"), R: logic.V("z"),
	}}
	if err := m.Validate(); err != nil {
		t.Fatal(err)
	}
	if !m.IsGAV() || !m.IsWeaklyAcyclic() {
		t.Fatal("classification wrong")
	}
}

func TestValidateSchemaOverlap(t *testing.T) {
	cat, u, _, _, _ := fixture()
	m2 := New(cat, u)
	r, _ := cat.ByName("R")
	m2.Source.Add(r)
	m2.Target.Add(r)
	if m2.Validate() == nil {
		t.Fatal("overlapping schemas accepted")
	}
}

func TestValidateWrongSides(t *testing.T) {
	cat, _, m, r, s := fixture()
	// s-t tgd with target body atom.
	m.ST = []*logic.TGD{{
		Body: []logic.Atom{logic.NewAtom(cat, s, logic.V("x"), logic.V("y"))},
		Head: []logic.Atom{logic.NewAtom(cat, s, logic.V("x"), logic.V("y"))},
	}}
	if m.Validate() == nil {
		t.Fatal("target body in s-t tgd accepted")
	}
	m.ST = nil
	// target tgd mentioning source.
	m.TTgds = []*logic.TGD{{
		Body: []logic.Atom{logic.NewAtom(cat, r, logic.V("x"), logic.V("y"))},
		Head: []logic.Atom{logic.NewAtom(cat, s, logic.V("x"), logic.V("y"))},
	}}
	if m.Validate() == nil {
		t.Fatal("source atom in target tgd accepted")
	}
	m.TTgds = nil
	// egd over source.
	m.TEgds = []*logic.EGD{{
		Body: []logic.Atom{logic.NewAtom(cat, r, logic.V("x"), logic.V("y"))},
		L:    logic.V("x"), R: logic.V("y"),
	}}
	if m.Validate() == nil {
		t.Fatal("source egd accepted")
	}
}

func TestWithoutEgds(t *testing.T) {
	cat, _, m, r, s := fixture()
	m.ST = []*logic.TGD{{
		Body: []logic.Atom{logic.NewAtom(cat, r, logic.V("x"), logic.V("y"))},
		Head: []logic.Atom{logic.NewAtom(cat, s, logic.V("x"), logic.V("y"))},
	}}
	m.TEgds = []*logic.EGD{{
		Body: []logic.Atom{logic.NewAtom(cat, s, logic.V("x"), logic.V("y"))},
		L:    logic.V("x"), R: logic.V("y"),
	}}
	mt := m.WithoutEgds()
	if len(mt.TEgds) != 0 || len(mt.ST) != 1 {
		t.Fatal("WithoutEgds wrong")
	}
	if len(m.TEgds) != 1 {
		t.Fatal("WithoutEgds mutated the original")
	}
}

func TestStatsAndAllTgds(t *testing.T) {
	cat, _, m, r, s := fixture()
	st := &logic.TGD{
		Body: []logic.Atom{logic.NewAtom(cat, r, logic.V("x"), logic.V("y"))},
		Head: []logic.Atom{logic.NewAtom(cat, s, logic.V("x"), logic.V("y"))},
	}
	tt := &logic.TGD{
		Body: []logic.Atom{logic.NewAtom(cat, s, logic.V("x"), logic.V("y"))},
		Head: []logic.Atom{logic.NewAtom(cat, s, logic.V("y"), logic.V("x"))},
	}
	m.ST = []*logic.TGD{st}
	m.TTgds = []*logic.TGD{tt}
	all := m.AllTgds()
	if len(all) != 2 || all[0] != st || all[1] != tt {
		t.Fatal("AllTgds wrong")
	}
	if got := m.Stats().String(); got != "1 s-t tgds, 1 target tgds, 0 egds" {
		t.Fatalf("stats = %q", got)
	}
}

func TestIsGAVNegative(t *testing.T) {
	cat, _, m, r, s := fixture()
	m.ST = []*logic.TGD{{
		Body: []logic.Atom{logic.NewAtom(cat, r, logic.V("x"), logic.V("y"))},
		Head: []logic.Atom{logic.NewAtom(cat, s, logic.V("x"), logic.V("z"))},
	}}
	if m.IsGAV() {
		t.Fatal("existential tgd classified GAV")
	}
}
