package parser

import "testing"

// Fuzz targets: the parsers must never panic, and accepted inputs must
// survive a render/reparse round trip where applicable. Run with
// `go test -fuzz=FuzzParseMapping ./internal/parser` for real fuzzing;
// plain `go test` replays the seed corpus.

func FuzzParseMapping(f *testing.F) {
	f.Add("source R(a). target S(a). tgd R(x) -> S(x).")
	f.Add("source R(a, b).\ntarget T(a).\negd k: T(x) & T(y) -> x = y.")
	f.Add("tgd -> .")
	f.Add("source R(a). tgd R('qu\\'oted) -> R(x).")
	f.Add("# only a comment")
	f.Add("source R(a). target S(a). tgd R(x) & R(y) -> S(x) & S(y).")
	f.Fuzz(func(t *testing.T, src string) {
		w, err := ParseMapping(src)
		if err != nil {
			return
		}
		// Accepted mappings must validate.
		if err := w.M.Validate(); err != nil {
			t.Fatalf("parsed mapping fails validation: %v\ninput: %q", err, src)
		}
	})
}

func FuzzParseFacts(f *testing.F) {
	f.Add("R('a', 'b').")
	f.Add("R(1, -2).\nR(x, 'y').")
	f.Add("R(")
	f.Add(".")
	f.Fuzz(func(t *testing.T, src string) {
		w, err := ParseMapping("source R(a, b). target S(a).")
		if err != nil {
			t.Fatal(err)
		}
		in, err := ParseFacts(src, w)
		if err != nil {
			return
		}
		// Round trip must preserve the instance.
		text := FormatFacts(in, w.Cat, w.U)
		back, err := ParseFacts(text, w)
		if err != nil {
			t.Fatalf("round trip parse failed: %v\nrendered: %q", err, text)
		}
		if !back.Equal(in) {
			t.Fatalf("round trip changed the instance\ninput: %q", src)
		}
	})
}

func FuzzParseQueries(f *testing.F) {
	f.Add("q(x) :- S(x).")
	f.Add("q() :- S(x), S(y).\nq2(x,x) :- S(x).")
	f.Add("q(x) :-")
	f.Fuzz(func(t *testing.T, src string) {
		w, err := ParseMapping("source R(a). target S(a).")
		if err != nil {
			t.Fatal(err)
		}
		qs, err := ParseQueries(src, w)
		if err != nil {
			return
		}
		for _, q := range qs {
			if err := q.Validate(); err != nil {
				t.Fatalf("parsed query fails validation: %v\ninput: %q", err, src)
			}
		}
	})
}
