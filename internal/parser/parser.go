package parser

import (
	"fmt"
	"strconv"

	"repro/internal/instance"
	"repro/internal/logic"
	"repro/internal/mapping"
	"repro/internal/schema"
	"repro/internal/symtab"
)

// World is a parsed schema mapping together with its catalog and universe.
type World struct {
	Cat *schema.Catalog
	U   *symtab.Universe
	M   *mapping.Mapping
}

// parser is a recursive-descent parser over the token stream.
type parser struct {
	lx   *lexer
	tok  token
	u    *symtab.Universe
	cat  *schema.Catalog
	anon int
}

func newParser(src string, cat *schema.Catalog, u *symtab.Universe) (*parser, error) {
	p := &parser{lx: newLexer(src), cat: cat, u: u}
	if err := p.advance(); err != nil {
		return nil, err
	}
	return p, nil
}

func (p *parser) advance() error {
	t, err := p.lx.next()
	if err != nil {
		return err
	}
	p.tok = t
	return nil
}

func (p *parser) expect(k tokKind) (token, error) {
	if p.tok.kind != k {
		return token{}, fmt.Errorf("line %d: expected %s, got %s %q", p.tok.line, k, p.tok.kind, p.tok.text)
	}
	t := p.tok
	return t, p.advance()
}

func (p *parser) freshAnon() string {
	p.anon++
	return fmt.Sprintf("_anon%d", p.anon)
}

// term parses a variable, anonymous variable, or constant.
func (p *parser) term() (logic.Term, error) {
	switch p.tok.kind {
	case tokIdent:
		v := p.tok.text
		return logic.V(v), p.advance()
	case tokUnder:
		return logic.V(p.freshAnon()), p.advance()
	case tokString, tokNumber:
		c := p.u.Const(p.tok.text)
		return logic.C(c), p.advance()
	default:
		return logic.Term{}, fmt.Errorf("line %d: expected term, got %s %q", p.tok.line, p.tok.kind, p.tok.text)
	}
}

// atom parses Rel(t1, ..., tk) and checks arity against the catalog.
func (p *parser) atom() (logic.Atom, error) {
	name, err := p.expect(tokIdent)
	if err != nil {
		return logic.Atom{}, err
	}
	rel, ok := p.cat.ByName(name.text)
	if !ok {
		return logic.Atom{}, fmt.Errorf("line %d: undeclared relation %s", name.line, name.text)
	}
	if _, err := p.expect(tokLParen); err != nil {
		return logic.Atom{}, err
	}
	var terms []logic.Term
	if p.tok.kind != tokRParen {
		for {
			t, err := p.term()
			if err != nil {
				return logic.Atom{}, err
			}
			terms = append(terms, t)
			if p.tok.kind != tokComma {
				break
			}
			if err := p.advance(); err != nil {
				return logic.Atom{}, err
			}
		}
	}
	if _, err := p.expect(tokRParen); err != nil {
		return logic.Atom{}, err
	}
	if len(terms) != rel.Arity {
		return logic.Atom{}, fmt.Errorf("line %d: %s expects %d arguments, got %d", name.line, rel.Name, rel.Arity, len(terms))
	}
	return logic.Atom{Rel: rel.ID, Terms: terms}, nil
}

// atoms parses atom (& atom)* or atom (, atom)* depending on sep.
func (p *parser) atoms(sep tokKind) ([]logic.Atom, error) {
	var out []logic.Atom
	for {
		a, err := p.atom()
		if err != nil {
			return nil, err
		}
		out = append(out, a)
		if p.tok.kind != sep {
			return out, nil
		}
		if err := p.advance(); err != nil {
			return nil, err
		}
	}
}

// ParseMapping parses a complete mapping file:
//
//	source R(attr, ...).          # declares a source relation
//	target T(attr, ...).          # declares a target relation
//	tgd [label:] body -> head.    # body/head atoms joined with &
//	egd [label:] body -> x = y.
func ParseMapping(src string) (*World, error) {
	cat := schema.NewCatalog()
	u := symtab.NewUniverse()
	m := mapping.New(cat, u)
	p, err := newParser(src, cat, u)
	if err != nil {
		return nil, err
	}
	for p.tok.kind != tokEOF {
		kw, err := p.expect(tokIdent)
		if err != nil {
			return nil, err
		}
		switch kw.text {
		case "source", "target":
			name, err := p.expect(tokIdent)
			if err != nil {
				return nil, err
			}
			if _, err := p.expect(tokLParen); err != nil {
				return nil, err
			}
			var attrs []string
			if p.tok.kind != tokRParen {
				for {
					at, err := p.expect(tokIdent)
					if err != nil {
						return nil, err
					}
					attrs = append(attrs, at.text)
					if p.tok.kind != tokComma {
						break
					}
					if err := p.advance(); err != nil {
						return nil, err
					}
				}
			}
			if _, err := p.expect(tokRParen); err != nil {
				return nil, err
			}
			rel, err := cat.Add(name.text, len(attrs), attrs...)
			if err != nil {
				return nil, fmt.Errorf("line %d: %w", name.line, err)
			}
			if kw.text == "source" {
				m.Source.Add(rel)
			} else {
				m.Target.Add(rel)
			}
		case "tgd":
			label, err := p.optionalLabel()
			if err != nil {
				return nil, err
			}
			body, err := p.atoms(tokAmp)
			if err != nil {
				return nil, err
			}
			if _, err := p.expect(tokArrow); err != nil {
				return nil, err
			}
			head, err := p.atoms(tokAmp)
			if err != nil {
				return nil, err
			}
			d := &logic.TGD{Body: body, Head: head, Label: label}
			if err := d.Validate(); err != nil {
				return nil, err
			}
			if allIn(m.Source, body) && allIn(m.Target, head) {
				m.ST = append(m.ST, d)
			} else if allIn(m.Target, body) && allIn(m.Target, head) {
				m.TTgds = append(m.TTgds, d)
			} else {
				return nil, fmt.Errorf("line %d: tgd %s is neither source-to-target nor target", kw.line, label)
			}
		case "egd":
			label, err := p.optionalLabel()
			if err != nil {
				return nil, err
			}
			body, err := p.atoms(tokAmp)
			if err != nil {
				return nil, err
			}
			if _, err := p.expect(tokArrow); err != nil {
				return nil, err
			}
			l, err := p.term()
			if err != nil {
				return nil, err
			}
			if _, err := p.expect(tokEq); err != nil {
				return nil, err
			}
			r, err := p.term()
			if err != nil {
				return nil, err
			}
			d := &logic.EGD{Body: body, L: l, R: r, Label: label}
			if err := d.Validate(); err != nil {
				return nil, err
			}
			if !allIn(m.Target, body) {
				return nil, fmt.Errorf("line %d: egd %s must range over the target schema", kw.line, label)
			}
			m.TEgds = append(m.TEgds, d)
		default:
			return nil, fmt.Errorf("line %d: expected source/target/tgd/egd, got %q", kw.line, kw.text)
		}
		if _, err := p.expect(tokDot); err != nil {
			return nil, err
		}
	}
	if err := m.Validate(); err != nil {
		return nil, err
	}
	return &World{Cat: cat, U: u, M: m}, nil
}

// optionalLabel parses "name:" if present (lookahead on ':').
func (p *parser) optionalLabel() (string, error) {
	if p.tok.kind != tokIdent {
		return "", nil
	}
	// Peek: identifier followed by ':' is a label; otherwise it is the
	// first atom's relation name. We must look ahead without consuming.
	save := *p.lx
	saveTok := p.tok
	name := p.tok.text
	if err := p.advance(); err != nil {
		return "", err
	}
	if p.tok.kind == tokColon {
		return name, p.advance()
	}
	*p.lx = save
	p.tok = saveTok
	return "", nil
}

func allIn(s *schema.Schema, atoms []logic.Atom) bool {
	for _, a := range atoms {
		if !s.Contains(a.Rel) {
			return false
		}
	}
	return true
}

// ParseQueries parses a query file against an existing world:
//
//	query ep2(protacc) :- refLink(s, _, acc, protacc), kgXref(u, _, s).
//
// Clauses sharing a name form a UCQ. The "query" keyword is optional.
func ParseQueries(src string, w *World) ([]*logic.UCQ, error) {
	p, err := newParser(src, w.Cat, w.U)
	if err != nil {
		return nil, err
	}
	byName := make(map[string]*logic.UCQ)
	var order []string
	for p.tok.kind != tokEOF {
		if p.tok.kind == tokIdent && p.tok.text == "query" {
			// Optional keyword, but only when followed by "name(" — a
			// relation named "query" would be ambiguous; we disallow it.
			if err := p.advance(); err != nil {
				return nil, err
			}
		}
		name, err := p.expect(tokIdent)
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(tokLParen); err != nil {
			return nil, err
		}
		var head []logic.Term
		if p.tok.kind != tokRParen {
			for {
				t, err := p.term()
				if err != nil {
					return nil, err
				}
				head = append(head, t)
				if p.tok.kind != tokComma {
					break
				}
				if err := p.advance(); err != nil {
					return nil, err
				}
			}
		}
		if _, err := p.expect(tokRParen); err != nil {
			return nil, err
		}
		if _, err := p.expect(tokRuleDef); err != nil {
			return nil, err
		}
		body, err := p.atoms(tokComma)
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(tokDot); err != nil {
			return nil, err
		}
		for _, a := range body {
			if !w.M.Target.Contains(a.Rel) {
				return nil, fmt.Errorf("query %s: body relation %s is not a target relation",
					name.text, w.Cat.ByID(a.Rel).Name)
			}
		}
		q, ok := byName[name.text]
		if !ok {
			q = &logic.UCQ{Name: name.text, Arity: len(head)}
			byName[name.text] = q
			order = append(order, name.text)
		}
		if q.Arity != len(head) {
			return nil, fmt.Errorf("query %s: clauses with different arities (%d vs %d)", name.text, q.Arity, len(head))
		}
		q.Clauses = append(q.Clauses, logic.CQ{Head: head, Body: body})
	}
	out := make([]*logic.UCQ, 0, len(order))
	for _, n := range order {
		q := byName[n]
		if err := q.Validate(); err != nil {
			return nil, err
		}
		out = append(out, q)
	}
	return out, nil
}

// ParseFacts parses a fact file ("R('a', 'b')." or "R(a, b)." — in fact
// files, bare identifiers and numbers are constants) into an instance over
// the world's source schema.
func ParseFacts(src string, w *World) (*instance.Instance, error) {
	p, err := newParser(src, w.Cat, w.U)
	if err != nil {
		return nil, err
	}
	in := instance.New(w.Cat)
	for p.tok.kind != tokEOF {
		name, err := p.expect(tokIdent)
		if err != nil {
			return nil, err
		}
		rel, ok := w.Cat.ByName(name.text)
		if !ok {
			return nil, fmt.Errorf("line %d: undeclared relation %s", name.line, name.text)
		}
		if _, err := p.expect(tokLParen); err != nil {
			return nil, err
		}
		var args []symtab.Value
		if p.tok.kind != tokRParen {
			for {
				switch p.tok.kind {
				case tokIdent, tokString, tokNumber:
					args = append(args, w.U.Const(p.tok.text))
				default:
					return nil, fmt.Errorf("line %d: expected constant, got %s", p.tok.line, p.tok.kind)
				}
				if err := p.advance(); err != nil {
					return nil, err
				}
				if p.tok.kind != tokComma {
					break
				}
				if err := p.advance(); err != nil {
					return nil, err
				}
			}
		}
		if _, err := p.expect(tokRParen); err != nil {
			return nil, err
		}
		if _, err := p.expect(tokDot); err != nil {
			return nil, err
		}
		if _, err := in.Insert(rel.ID, args); err != nil {
			return nil, fmt.Errorf("line %d: %v", name.line, err)
		}
	}
	return in, nil
}

// FormatFacts renders an instance as a fact file (constants quoted),
// sorted for reproducible output.
func FormatFacts(in *instance.Instance, cat *schema.Catalog, u *symtab.Universe) string {
	var b []byte
	for _, f := range in.Facts() {
		b = append(b, cat.ByID(f.Rel).Name...)
		b = append(b, '(')
		for i, v := range f.Args {
			if i > 0 {
				b = append(b, ", "...)
			}
			b = strconv.AppendQuote(b, u.Name(v))
		}
		b = append(b, ").\n"...)
	}
	return string(b)
}
