// Package parser reads the textual formats used by the command-line tools
// and examples: schema mappings (source/target declarations, tgds, egds),
// Datalog-style queries, and fact files.
//
// Conventions: relation names and variables are identifiers; constants are
// quoted strings ('chr1' or "chr1") or bare numbers; `_` is an anonymous
// variable (fresh at every occurrence); `#` starts a line comment.
package parser

import (
	"fmt"
	"strings"
	"unicode"
)

type tokKind int

const (
	tokEOF tokKind = iota
	tokIdent
	tokString // quoted constant
	tokNumber
	tokLParen
	tokRParen
	tokComma
	tokDot
	tokColon
	tokArrow   // ->
	tokRuleDef // :-
	tokAmp     // &
	tokEq      // =
	tokUnder   // _
)

func (k tokKind) String() string {
	switch k {
	case tokEOF:
		return "end of input"
	case tokIdent:
		return "identifier"
	case tokString:
		return "string"
	case tokNumber:
		return "number"
	case tokLParen:
		return "'('"
	case tokRParen:
		return "')'"
	case tokComma:
		return "','"
	case tokDot:
		return "'.'"
	case tokColon:
		return "':'"
	case tokArrow:
		return "'->'"
	case tokRuleDef:
		return "':-'"
	case tokAmp:
		return "'&'"
	case tokEq:
		return "'='"
	case tokUnder:
		return "'_'"
	}
	return "?"
}

type token struct {
	kind tokKind
	text string
	line int
}

type lexer struct {
	src  []rune
	pos  int
	line int
}

func newLexer(src string) *lexer {
	return &lexer{src: []rune(src), line: 1}
}

func (l *lexer) errf(format string, args ...interface{}) error {
	return fmt.Errorf("line %d: %s", l.line, fmt.Sprintf(format, args...))
}

func (l *lexer) next() (token, error) {
	for l.pos < len(l.src) {
		c := l.src[l.pos]
		switch {
		case c == '\n':
			l.line++
			l.pos++
		case unicode.IsSpace(c):
			l.pos++
		case c == '#':
			for l.pos < len(l.src) && l.src[l.pos] != '\n' {
				l.pos++
			}
		default:
			goto scan
		}
	}
	return token{kind: tokEOF, line: l.line}, nil

scan:
	c := l.src[l.pos]
	start := l.line
	switch {
	case c == '(':
		l.pos++
		return token{tokLParen, "(", start}, nil
	case c == ')':
		l.pos++
		return token{tokRParen, ")", start}, nil
	case c == ',':
		l.pos++
		return token{tokComma, ",", start}, nil
	case c == '.':
		l.pos++
		return token{tokDot, ".", start}, nil
	case c == '&':
		l.pos++
		return token{tokAmp, "&", start}, nil
	case c == '=':
		l.pos++
		return token{tokEq, "=", start}, nil
	case c == '-':
		if l.pos+1 < len(l.src) && l.src[l.pos+1] == '>' {
			l.pos += 2
			return token{tokArrow, "->", start}, nil
		}
		// Negative number?
		if l.pos+1 < len(l.src) && unicode.IsDigit(l.src[l.pos+1]) {
			return l.number()
		}
		return token{}, l.errf("unexpected '-'")
	case c == ':':
		if l.pos+1 < len(l.src) && l.src[l.pos+1] == '-' {
			l.pos += 2
			return token{tokRuleDef, ":-", start}, nil
		}
		l.pos++
		return token{tokColon, ":", start}, nil
	case c == '\'' || c == '"':
		return l.quoted(c)
	case unicode.IsDigit(c):
		return l.number()
	case c == '_' && (l.pos+1 >= len(l.src) || !isIdentRune(l.src[l.pos+1])):
		l.pos++
		return token{tokUnder, "_", start}, nil
	case isIdentStart(c):
		j := l.pos
		for j < len(l.src) && isIdentRune(l.src[j]) {
			j++
		}
		text := string(l.src[l.pos:j])
		l.pos = j
		return token{tokIdent, text, start}, nil
	default:
		return token{}, l.errf("unexpected character %q", c)
	}
}

func (l *lexer) quoted(q rune) (token, error) {
	start := l.line
	l.pos++ // opening quote
	var b strings.Builder
	for l.pos < len(l.src) {
		c := l.src[l.pos]
		if c == q {
			l.pos++
			return token{tokString, b.String(), start}, nil
		}
		if c == '\n' {
			return token{}, l.errf("unterminated string")
		}
		if c == '\\' && l.pos+1 < len(l.src) {
			l.pos++
			c = l.src[l.pos]
		}
		b.WriteRune(c)
		l.pos++
	}
	return token{}, l.errf("unterminated string")
}

func (l *lexer) number() (token, error) {
	start := l.line
	j := l.pos
	if l.src[j] == '-' {
		j++
	}
	for j < len(l.src) && (unicode.IsDigit(l.src[j]) || l.src[j] == '.') {
		// A trailing '.' is the statement terminator, not a decimal point,
		// unless followed by a digit.
		if l.src[j] == '.' && (j+1 >= len(l.src) || !unicode.IsDigit(l.src[j+1])) {
			break
		}
		j++
	}
	text := string(l.src[l.pos:j])
	l.pos = j
	return token{tokNumber, text, start}, nil
}

func isIdentStart(c rune) bool {
	return unicode.IsLetter(c) || c == '_'
}

func isIdentRune(c rune) bool {
	return unicode.IsLetter(c) || unicode.IsDigit(c) || c == '_' || c == '-'
}
