package parser

import (
	"strings"
	"testing"

	"repro/internal/symtab"
)

const sampleMapping = `
# A small genome-flavoured mapping.
source ComputedAlignments(acc, exonCount).
source RefSeqData(acc, exonCount).
target knownGene(name, exonCount).

tgd ucsc: ComputedAlignments(a, e) -> knownGene(a, e).
tgd refseq: RefSeqData(a, e) -> knownGene(a, e).
egd key: knownGene(n, e1) & knownGene(n, e2) -> e1 = e2.
`

func TestParseMapping(t *testing.T) {
	w, err := ParseMapping(sampleMapping)
	if err != nil {
		t.Fatal(err)
	}
	if got := w.M.Stats(); got.STTgds != 2 || got.TargetTgds != 0 || got.TargetEgds != 1 {
		t.Fatalf("stats = %+v", got)
	}
	if w.M.ST[0].Label != "ucsc" || w.M.TEgds[0].Label != "key" {
		t.Fatal("labels not parsed")
	}
	ca, ok := w.Cat.ByName("ComputedAlignments")
	if !ok || ca.Arity != 2 || ca.Attrs[1] != "exonCount" {
		t.Fatalf("relation decl wrong: %+v", ca)
	}
	if !w.M.IsGAV() || !w.M.IsWeaklyAcyclic() {
		t.Fatal("classification wrong")
	}
}

func TestParseMappingTargetTgdAndConstants(t *testing.T) {
	w, err := ParseMapping(`
source R(a).
target S(a, b).
target U(a).
tgd R(x) -> S(x, z).
tgd S(x, 'chr1') -> U(x).
`)
	if err != nil {
		t.Fatal(err)
	}
	if len(w.M.ST) != 1 || len(w.M.TTgds) != 1 {
		t.Fatalf("st=%d tt=%d", len(w.M.ST), len(w.M.TTgds))
	}
	// The s-t tgd has an existential z.
	if got := w.M.ST[0].ExistentialVars(); len(got) != 1 || got[0] != "z" {
		t.Fatalf("existentials = %v", got)
	}
	// 'chr1' parsed as a constant.
	body := w.M.TTgds[0].Body[0]
	if body.Terms[1].IsVar() {
		t.Fatal("'chr1' parsed as variable")
	}
	if v, _ := w.U.Lookup("chr1"); v != body.Terms[1].Val {
		t.Fatal("constant not interned correctly")
	}
}

func TestParseMappingErrors(t *testing.T) {
	cases := []struct{ name, src string }{
		{"undeclared relation", `source R(a). tgd Q(x) -> R(x).`},
		{"arity mismatch", `source R(a). target S(a). tgd R(x, y) -> S(x).`},
		{"mixed tgd", `source R(a). target S(a). tgd R(x) & S(x) -> S(x).`},
		{"egd over source", `source R(a). target S(a). egd R(x) & R(y) -> x = y.`},
		{"duplicate relation", `source R(a). source R(b).`},
		{"unsafe egd", `target S(a, b). egd S(x, y) -> x = z.`},
		{"bad keyword", `relation R(a).`},
		{"unterminated string", "source R(a).\ntgd R('x) -> R(x)."},
	}
	for _, c := range cases {
		if _, err := ParseMapping(c.src); err == nil {
			t.Errorf("%s: accepted", c.name)
		}
	}
}

func TestParseQueries(t *testing.T) {
	w, err := ParseMapping(sampleMapping)
	if err != nil {
		t.Fatal(err)
	}
	qs, err := ParseQueries(`
# paper-style suite
query xr1() :- knownGene(kgid, exc).
xr2(kgid) :- knownGene(kgid, exc).
union2(x) :- knownGene(x, '1').
union2(x) :- knownGene('fixed', x).
`, w)
	if err != nil {
		t.Fatal(err)
	}
	if len(qs) != 3 {
		t.Fatalf("queries = %d", len(qs))
	}
	if qs[0].Name != "xr1" || qs[0].Arity != 0 {
		t.Fatalf("xr1 parsed wrong: %+v", qs[0])
	}
	if len(qs[2].Clauses) != 2 {
		t.Fatalf("union clauses = %d", len(qs[2].Clauses))
	}
}

func TestParseQueriesAnonymousVars(t *testing.T) {
	w, _ := ParseMapping(sampleMapping)
	qs, err := ParseQueries(`q(x) :- knownGene(x, _), knownGene(_, x).`, w)
	if err != nil {
		t.Fatal(err)
	}
	c := qs[0].Clauses[0]
	// The two _ occurrences must be distinct variables.
	if c.Body[0].Terms[1].Var == c.Body[1].Terms[0].Var {
		t.Fatal("anonymous variables shared a name")
	}
}

func TestParseQueriesErrors(t *testing.T) {
	w, _ := ParseMapping(sampleMapping)
	cases := []string{
		`q(x) :- ComputedAlignments(x, y).`,                    // source relation in query
		`q(z) :- knownGene(x, y).`,                             // unsafe head
		`q(x) :- knownGene(x, y). q(x, y) :- knownGene(x, y).`, // arity clash
	}
	for _, src := range cases {
		if _, err := ParseQueries(src, w); err == nil {
			t.Errorf("accepted %q", src)
		}
	}
}

func TestParseFactsRoundTrip(t *testing.T) {
	w, err := ParseMapping(sampleMapping)
	if err != nil {
		t.Fatal(err)
	}
	in, err := ParseFacts(`
ComputedAlignments('uc001aaa.3', 3).
ComputedAlignments(uc010nxq, '23').
RefSeqData('NM_000518', 3).
`, w)
	if err != nil {
		t.Fatal(err)
	}
	if in.Len() != 3 {
		t.Fatalf("facts = %d", in.Len())
	}
	ca, _ := w.Cat.ByName("ComputedAlignments")
	acc, _ := w.U.Lookup("uc001aaa.3")
	three, _ := w.U.Lookup("3")
	if !in.Contains(ca.ID, []symtab.Value{acc, three}) {
		t.Fatal("quoted fact missing")
	}

	text := FormatFacts(in, w.Cat, w.U)
	back, err := ParseFacts(text, w)
	if err != nil {
		t.Fatalf("round trip parse: %v\n%s", err, text)
	}
	if !back.Equal(in) {
		t.Fatal("round trip changed the instance")
	}
}

func TestParseFactsErrors(t *testing.T) {
	w, _ := ParseMapping(sampleMapping)
	for _, src := range []string{
		`Nope('a').`,
		`ComputedAlignments('a').`,
		`ComputedAlignments('a', 'b', 'c').`,
		`ComputedAlignments('a' 'b').`,
	} {
		if _, err := ParseFacts(src, w); err == nil {
			t.Errorf("accepted %q", src)
		}
	}
}

func TestLexerEdgeCases(t *testing.T) {
	// Numbers with decimal points, negative numbers, comments, both quote
	// styles, escapes.
	w, err := ParseMapping(`
source R(a).
target S(a).
tgd R(x) -> S(x).
`)
	if err != nil {
		t.Fatal(err)
	}
	in, err := ParseFacts(`
R(3.14). # pi
R(-42).
R("double\"quoted").
`, w)
	if err != nil {
		t.Fatal(err)
	}
	if in.Len() != 3 {
		t.Fatalf("facts = %d", in.Len())
	}
	if _, ok := w.U.Lookup(`double"quoted`); !ok {
		t.Fatal("escape not handled")
	}
	if _, ok := w.U.Lookup("3.14"); !ok {
		t.Fatal("decimal number not lexed")
	}
	if _, ok := w.U.Lookup("-42"); !ok {
		t.Fatal("negative number not lexed")
	}
}

func TestQueryStringRendering(t *testing.T) {
	w, _ := ParseMapping(sampleMapping)
	qs, err := ParseQueries(`q(x) :- knownGene(x, y).`, w)
	if err != nil {
		t.Fatal(err)
	}
	s := qs[0].String(w.Cat, w.U)
	if !strings.Contains(s, "q(x) :- knownGene(x,y)") {
		t.Fatalf("rendered: %s", s)
	}
}
