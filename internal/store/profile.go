package store

import (
	"fmt"
	"os"
	"path/filepath"
	"time"
)

// profileFile is the per-scenario workload-profile artifact, written
// beside snapshot.xr under the same checksummed envelope and atomic
// write protocol. It is advisory history, not tenant state: recovery
// never quarantines a tenant over a damaged profile, and a scenario
// directory holding only a profile (no snapshot) is still an empty husk.
const profileFile = "profile.xr"

// SaveProfile persists a scenario's workload-profile payload (the
// profiler snapshot's JSON) beside its snapshot. Only tracked scenarios
// are written — a profile must never create a scenario directory the
// manifest does not own — so saving for an untracked (or still-deferred)
// scenario is a silent no-op. The payload rides the standard envelope;
// xr_profile_persisted_bytes_total counts the bytes that reached disk.
func (s *Store) SaveProfile(name string, payload []byte) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	entry, tracked := s.manifest[name]
	if !tracked {
		return nil
	}
	blob := encodeEnvelope(payload)
	dir := s.scenarioDirPath(entry.Dir)
	path := filepath.Join(dir, profileFile)
	if err := s.retry(func() error { return s.atomicWrite(dir, path, blob, name+"/profile") }); err != nil {
		s.met.Counter("xr_store_profile_save_errors_total").Inc()
		return fmt.Errorf("store: saving profile for scenario %q: %w", name, err)
	}
	s.met.Counter("xr_store_profile_saves_total").Inc()
	s.met.Counter("xr_profile_persisted_bytes_total").Add(int64(len(blob)))
	return nil
}

// LoadProfile reads a scenario's persisted workload profile, verifying
// the envelope, and returns the inner payload. A scenario with no
// profile on disk returns (nil, nil) — absence is normal, not an error.
// A damaged profile returns an error matching ErrCorrupt; callers should
// log and continue, never quarantine the tenant over it.
func (s *Store) LoadProfile(name string) ([]byte, error) {
	s.mu.Lock()
	dir := dirFor(name)
	if e, ok := s.manifest[name]; ok {
		dir = e.Dir
	}
	s.mu.Unlock()
	path := filepath.Join(s.scenarioDirPath(dir), profileFile)
	if err := s.fault(SiteRead, name+"/profile"); err != nil {
		return nil, fmt.Errorf("%w: injected read fault: %v", ErrCorrupt, err)
	}
	data, err := os.ReadFile(path)
	if os.IsNotExist(err) {
		return nil, nil
	}
	if err != nil {
		return nil, err
	}
	payload, err := decodeEnvelope(data)
	if err != nil {
		return nil, fmt.Errorf("store: profile for scenario %q: %w", name, err)
	}
	return payload, nil
}

// pruneQuarantineLocked enforces the quarantine retention window at boot:
// artifacts under quarantine/ whose modification time is older than the
// window are removed. Zero (or negative) retention keeps everything.
// Pruning runs before this boot's recovery quarantines anything, so a
// fresh quarantine always survives at least one full window.
func (s *Store) pruneQuarantineLocked(retention time.Duration) {
	if retention <= 0 {
		return
	}
	qdir := filepath.Join(s.dir, quarantineDir)
	entries, err := os.ReadDir(qdir)
	if err != nil {
		return
	}
	cutoff := time.Now().Add(-retention)
	pruned := 0
	for _, e := range entries {
		info, err := e.Info()
		if err != nil || !info.ModTime().Before(cutoff) {
			continue
		}
		if err := os.RemoveAll(filepath.Join(qdir, e.Name())); err != nil {
			s.log.Warn("pruning quarantine artifact failed", "artifact", e.Name(), "error", err.Error())
			continue
		}
		pruned++
	}
	if pruned > 0 {
		s.met.Counter("xr_store_quarantine_pruned_total").Add(int64(pruned))
		s.log.Info("pruned quarantine artifacts past retention",
			"pruned", pruned, "retention", retention.String())
	}
}
