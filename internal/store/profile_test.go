package store

import (
	"errors"
	"math/rand"
	"os"
	"path/filepath"
	"testing"
	"time"

	"repro/internal/telemetry"
)

// The profile artifact rides the same envelope and atomic-write protocol
// as snapshots but carries advisory history, not tenant state. These
// tests pin the contract: byte-identical round trips across a reboot, a
// failed save never damages the previous profile, and a corrupt profile
// never quarantines its tenant.

func profilePayload() []byte {
	return []byte(`{"records":1,"solves":42,"signatures":[{"key":"2,7","solves":42}]}`)
}

func TestProfileCrashRecoveryRoundTrip(t *testing.T) {
	dir := t.TempDir()
	met := telemetry.NewRegistry()
	s, err := Open(dir, Options{Metrics: met, RepersistInterval: -1})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Recover(); err != nil {
		t.Fatal(err)
	}

	// Untracked scenario: SaveProfile is a silent no-op and must not
	// create a scenario directory the manifest does not own.
	if err := s.SaveProfile("alpha", profilePayload()); err != nil {
		t.Fatalf("untracked SaveProfile: %v", err)
	}
	if _, err := os.Stat(filepath.Join(dir, scenariosDir, dirFor("alpha"))); !os.IsNotExist(err) {
		t.Fatal("untracked SaveProfile created a scenario directory")
	}

	sn := crashSnapshot("alpha", rand.New(rand.NewSource(1)))
	if err := s.Save(sn); err != nil {
		t.Fatal(err)
	}
	payload := profilePayload()
	if err := s.SaveProfile("alpha", payload); err != nil {
		t.Fatal(err)
	}
	snap := met.Snapshot()
	if got := snap.Counters["xr_store_profile_saves_total"]; got != 1 {
		t.Fatalf("xr_store_profile_saves_total = %d, want 1", got)
	}
	if got := snap.Counters["xr_profile_persisted_bytes_total"]; got <= int64(len(payload)) {
		t.Fatalf("xr_profile_persisted_bytes_total = %d, want > payload length %d (envelope adds a header)", got, len(payload))
	}
	// The store is abandoned, not Closed: a crash flushes nothing.

	s2, err := Open(dir, Options{RepersistInterval: -1})
	if err != nil {
		t.Fatal(err)
	}
	rep, err := s2.Recover()
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Recovered) != 1 || len(rep.Quarantined) != 0 {
		t.Fatalf("recovery: %d recovered, %d quarantined", len(rep.Recovered), len(rep.Quarantined))
	}
	got, err := s2.LoadProfile("alpha")
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != string(payload) {
		t.Fatalf("profile not byte-identical across reboot:\n%s\nvs\n%s", payload, got)
	}
	// Absence is normal, not an error.
	if p, err := s2.LoadProfile("ghost"); err != nil || p != nil {
		t.Fatalf("absent profile: payload=%v err=%v, want nil/nil", p, err)
	}
}

// TestProfileSaveCrashKeepsPrevious pins the atomic-write guarantee for
// profiles: a save that dies before the rename leaves the previous
// profile readable, and the stray temp file is swept on the next boot.
func TestProfileSaveCrashKeepsPrevious(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir, Options{RepersistInterval: -1})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Recover(); err != nil {
		t.Fatal(err)
	}
	if err := s.Save(crashSnapshot("alpha", rand.New(rand.NewSource(2)))); err != nil {
		t.Fatal(err)
	}
	v1 := []byte(`{"records":1,"solves":1}`)
	if err := s.SaveProfile("alpha", v1); err != nil {
		t.Fatal(err)
	}

	// Reboot with a hook that kills the process at the profile rename:
	// the temp file is written but never reaches the final path.
	met := telemetry.NewRegistry()
	s2, err := Open(dir, Options{
		Metrics: met,
		FaultHook: func(site, key string) error {
			if site == SiteRename && key == "alpha/profile" {
				return errKilled
			}
			return nil
		},
		RetryAttempts:     1,
		RetryBase:         time.Millisecond,
		RepersistInterval: -1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s2.Recover(); err != nil {
		t.Fatal(err)
	}
	if err := s2.SaveProfile("alpha", []byte(`{"records":9,"solves":9}`)); err == nil {
		t.Fatal("SaveProfile succeeded through a failing rename")
	}
	if got := met.Snapshot().Counters["xr_store_profile_save_errors_total"]; got != 1 {
		t.Fatalf("xr_store_profile_save_errors_total = %d, want 1", got)
	}

	s3, err := Open(dir, Options{RepersistInterval: -1})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s3.Recover(); err != nil {
		t.Fatal(err)
	}
	got, err := s3.LoadProfile("alpha")
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != string(v1) {
		t.Fatalf("crashed save damaged the previous profile:\n%s\nvs\n%s", v1, got)
	}
}

// TestProfileCorruptRecoverKeepsTenant pins the advisory-history rule: a
// damaged profile surfaces as ErrCorrupt from LoadProfile but recovery
// never quarantines the tenant over it.
func TestProfileCorruptRecoverKeepsTenant(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir, Options{RepersistInterval: -1})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Recover(); err != nil {
		t.Fatal(err)
	}
	if err := s.Save(crashSnapshot("alpha", rand.New(rand.NewSource(3)))); err != nil {
		t.Fatal(err)
	}
	if err := s.SaveProfile("alpha", profilePayload()); err != nil {
		t.Fatal(err)
	}

	// Storage rot: flip one byte of the profile envelope on disk.
	path := filepath.Join(dir, scenariosDir, dirFor("alpha"), profileFile)
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)/2] ^= 0x40
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}

	s2, err := Open(dir, Options{RepersistInterval: -1})
	if err != nil {
		t.Fatal(err)
	}
	rep, err := s2.Recover()
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Recovered) != 1 || len(rep.Quarantined) != 0 {
		t.Fatalf("corrupt profile affected tenant recovery: %d recovered, %d quarantined",
			len(rep.Recovered), len(rep.Quarantined))
	}
	if _, err := s2.LoadProfile("alpha"); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("LoadProfile on rot = %v, want ErrCorrupt", err)
	}
}

// TestQuarantineRetentionPruning pins the boot-time retention window:
// quarantine artifacts older than the window are removed (counted and
// logged), younger ones and everything under zero retention survive.
func TestQuarantineRetentionPruning(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir, Options{RepersistInterval: -1})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Recover(); err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(4))
	for _, name := range []string{"old", "fresh"} {
		if err := s.Save(crashSnapshot(name, rng)); err != nil {
			t.Fatal(err)
		}
	}
	oldRec := s.Quarantine("old", errors.New("damaged beyond repair"))
	freshRec := s.Quarantine("fresh", errors.New("damaged beyond repair"))
	if oldRec.Path == "" || freshRec.Path == "" {
		t.Fatalf("quarantine left no artifact: old=%q fresh=%q", oldRec.Path, freshRec.Path)
	}
	// Age the old artifact two windows past retention; the clock is the
	// artifact's mtime, stamped when it was set aside.
	stale := time.Now().Add(-48 * time.Hour)
	if err := os.Chtimes(filepath.Join(dir, oldRec.Path), stale, stale); err != nil {
		t.Fatal(err)
	}

	met := telemetry.NewRegistry()
	s2, err := Open(dir, Options{
		Metrics:             met,
		QuarantineRetention: 24 * time.Hour,
		RepersistInterval:   -1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s2.Recover(); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(filepath.Join(dir, oldRec.Path)); !os.IsNotExist(err) {
		t.Fatalf("stale artifact survived retention: %v", err)
	}
	if _, err := os.Stat(filepath.Join(dir, freshRec.Path)); err != nil {
		t.Fatalf("fresh artifact pruned inside the window: %v", err)
	}
	if got := met.Snapshot().Counters["xr_store_quarantine_pruned_total"]; got != 1 {
		t.Fatalf("xr_store_quarantine_pruned_total = %d, want 1", got)
	}

	// Zero retention keeps everything, however stale.
	if err := os.Chtimes(filepath.Join(dir, freshRec.Path), stale, stale); err != nil {
		t.Fatal(err)
	}
	s3, err := Open(dir, Options{RepersistInterval: -1})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s3.Recover(); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(filepath.Join(dir, freshRec.Path)); err != nil {
		t.Fatalf("zero retention pruned an artifact: %v", err)
	}
}
