// Package store implements the durable, crash-safe scenario store behind
// xrserved's -data-dir. Each loaded scenario persists as a versioned,
// length-prefixed, SHA-256-checksummed snapshot (source facts, mapping
// text, preloaded named queries) written with a temp-file → fsync →
// atomic-rename protocol into a per-scenario directory, tracked by a
// manifest that rides the same checksummed envelope. Writes retry with
// capped exponential backoff; a save that still fails is deferred and
// re-attempted by a background loop, so a transiently full or flaky disk
// degrades durability, not availability.
//
// On boot, Recover replays the manifest, re-verifies every checksum, and
// quarantines — renames into quarantine/ and reports — rather than dies
// on damage: a torn write, bit flip, or unreadable file degrades one
// tenant, never the process, mirroring the soundness-under-failure
// discipline of the query engines (serve the sound subset; DESIGN.md §16).
package store

import (
	"crypto/rand"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log/slog"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"time"

	"repro/internal/telemetry"
)

// Filesystem fault-injection sites fired by the write protocol and the
// recovery path. The values must match internal/faultkit's SiteFS*
// constants (duplicated so production code never imports the test
// harness). The hook fires *before* the operation it names: a returned
// error means the operation never happened, which is exactly the state a
// crash at that point leaves on disk.
const (
	SiteWrite  = "store.write"  // before the temp file's bytes are written
	SiteSync   = "store.sync"   // before an fsync (file and directory syncs both fire here)
	SiteRename = "store.rename" // before the temp file renames over the final path
	SiteRead   = "store.read"   // before a snapshot/manifest file is read back
)

const (
	scenariosDir  = "scenarios"
	quarantineDir = "quarantine"
	manifestFile  = "manifest.xr"
	snapshotFile  = "snapshot.xr"
	tmpSuffix     = ".tmp"
)

// Snapshot is the persisted form of one scenario: everything needed to
// rebuild the tenant through the registry's normal load path (the warm
// signature caches rebuild naturally from these texts). Load-time options
// have no wire surface today; when they grow one, they version in through
// the envelope's CurrentVersion.
type Snapshot struct {
	Name    string `json:"name"`
	Mapping string `json:"mapping"`
	Facts   string `json:"facts"`
	Queries string `json:"queries,omitempty"`
	// SavedAtUnixMS stamps the save time (informational; not part of any
	// integrity check).
	SavedAtUnixMS int64 `json:"saved_at_unix_ms,omitempty"`
}

// manifestEntry is one tracked scenario in the manifest payload.
type manifestEntry struct {
	Name string `json:"name"`
	// Dir is the scenario's directory under scenarios/ (the sanitized or
	// hashed form of the name; recovery never re-derives it).
	Dir string `json:"dir"`
	// SnapshotSHA256 is the hex SHA-256 of the whole snapshot file. The
	// envelope checksum inside the file is authoritative for integrity;
	// this digest is advisory (it detects a file swapped for a different
	// valid snapshot, reported as a warning).
	SnapshotSHA256 string `json:"snapshot_sha256"`
	Bytes          int64  `json:"bytes"`
	SavedAtUnixMS  int64  `json:"saved_at_unix_ms"`
}

// manifestPayload is the manifest's JSON payload inside the envelope.
type manifestPayload struct {
	Entries []manifestEntry `json:"entries"`
}

// QuarantineRecord describes one damaged artifact set aside during
// recovery (or a semantic quarantine requested by the server when a
// recovered snapshot fails to load). ID is a request-style correlation ID
// stamped on the ERROR log line and the quarantine file name.
type QuarantineRecord struct {
	ID   string `json:"id"`
	Name string `json:"name,omitempty"`
	// Path is where the artifact landed under quarantine/, relative to
	// the data dir; empty when there was nothing on disk to move (e.g. a
	// manifest entry whose snapshot is missing).
	Path   string `json:"path,omitempty"`
	Reason string `json:"reason"`
}

// RecoveryReport summarizes one Recover pass.
type RecoveryReport struct {
	// Recovered holds every snapshot that passed verification, manifest
	// order first, then adopted orphans in directory order.
	Recovered []Snapshot
	// Adopted names the subset of Recovered found on disk but absent from
	// the manifest (e.g. a crash between snapshot rename and manifest
	// write); they are re-tracked and logged at WARN.
	Adopted []string
	// Quarantined lists every artifact set aside.
	Quarantined []QuarantineRecord
}

// EntryStatus is one tracked scenario as Status reports it.
type EntryStatus struct {
	Name          string `json:"name"`
	Bytes         int64  `json:"bytes,omitempty"`
	SHA256        string `json:"sha256,omitempty"`
	SavedAtUnixMS int64  `json:"saved_at_unix_ms,omitempty"`
	// Dirty marks a scenario whose latest save is deferred (persisting is
	// being retried in the background; the on-disk state, if any, is the
	// previous successful save).
	Dirty bool `json:"dirty,omitempty"`
}

// Status is a point-in-time view of the store for /v1/store and /healthz.
type Status struct {
	DataDir     string             `json:"data_dir"`
	Persisted   int                `json:"persisted"`
	Dirty       int                `json:"dirty"`
	Quarantined int                `json:"quarantined"`
	Scenarios   []EntryStatus      `json:"scenarios,omitempty"`
	Quarantine  []QuarantineRecord `json:"quarantine,omitempty"`
}

// Options tunes Open. The zero value is production-safe.
type Options struct {
	// Logger receives structured store lifecycle records (quarantines log
	// at ERROR, adoptions and deferred saves at WARN). Nil discards.
	Logger *slog.Logger
	// Metrics receives the xr_store_* counters and gauges. Nil allocates
	// a private registry (counters still work, just unexposed).
	Metrics *telemetry.Registry
	// FaultHook, when non-nil, is consulted before every filesystem
	// operation at the Site* sites (test-only; see faultkit).
	FaultHook func(site, key string) error
	// RetryAttempts caps the synchronous tries per write (default 3);
	// RetryBase is the first backoff sleep, doubling per attempt up to
	// RetryCap (defaults 25ms / 500ms).
	RetryAttempts int
	RetryBase     time.Duration
	RetryCap      time.Duration
	// RepersistInterval is the background retry tick for deferred saves
	// (default 5s; negative disables the background loop).
	RepersistInterval time.Duration
	// QuarantineRetention prunes quarantine artifacts older than the
	// window during Recover (0 = keep forever). Pruning is mtime-based:
	// the clock starts when the artifact was set aside.
	QuarantineRetention time.Duration
}

// Store is the durable scenario store. All methods are safe for
// concurrent use. Open it, Recover once before serving, then Save/Delete
// as scenarios load and unload; Close stops the background loop after a
// final flush attempt.
type Store struct {
	dir       string
	log       *slog.Logger
	met       *telemetry.Registry
	fault     func(site, key string) error
	attempts  int
	base      time.Duration
	cap       time.Duration
	retention time.Duration

	mu            sync.Mutex
	manifest      map[string]*manifestEntry
	dirty         map[string]Snapshot
	manifestDirty bool
	quarantined   []QuarantineRecord

	stop chan struct{}
	done chan struct{}
}

// Open prepares the store's directory tree and starts the background
// re-persist loop. It does not read existing data; call Recover for that
// (always, even on a fresh directory — it also cleans stray temp files).
func Open(dir string, opts Options) (*Store, error) {
	if dir == "" {
		return nil, errors.New("store: empty data directory")
	}
	for _, d := range []string{dir, filepath.Join(dir, scenariosDir), filepath.Join(dir, quarantineDir)} {
		if err := os.MkdirAll(d, 0o755); err != nil {
			return nil, fmt.Errorf("store: preparing %s: %w", d, err)
		}
	}
	if opts.Logger == nil {
		opts.Logger = slog.New(slog.NewTextHandler(io.Discard, nil))
	}
	if opts.Metrics == nil {
		opts.Metrics = telemetry.NewRegistry()
	}
	if opts.FaultHook == nil {
		opts.FaultHook = func(string, string) error { return nil }
	}
	if opts.RetryAttempts <= 0 {
		opts.RetryAttempts = 3
	}
	if opts.RetryBase <= 0 {
		opts.RetryBase = 25 * time.Millisecond
	}
	if opts.RetryCap <= 0 {
		opts.RetryCap = 500 * time.Millisecond
	}
	s := &Store{
		dir:       dir,
		log:       opts.Logger,
		met:       opts.Metrics,
		fault:     opts.FaultHook,
		attempts:  opts.RetryAttempts,
		base:      opts.RetryBase,
		cap:       opts.RetryCap,
		retention: opts.QuarantineRetention,
		manifest:  make(map[string]*manifestEntry),
		dirty:     make(map[string]Snapshot),
	}
	interval := opts.RepersistInterval
	if interval == 0 {
		interval = 5 * time.Second
	}
	if interval > 0 {
		s.stop = make(chan struct{})
		s.done = make(chan struct{})
		go s.repersistLoop(interval)
	}
	return s, nil
}

// DataDir returns the store's root directory.
func (s *Store) DataDir() string { return s.dir }

// Close stops the background loop and makes one final attempt to flush
// deferred saves. Safe to call once.
func (s *Store) Close() {
	if s.stop != nil {
		close(s.stop)
		<-s.done
	}
	s.flushDirty()
}

// ---------------------------------------------------------------------------
// Write path.

// Save persists one scenario: snapshot first (its own atomic write), then
// the manifest. On failure after all retries the snapshot is recorded as
// dirty and re-attempted in the background; Save still returns the error
// so the caller can log the deferral. A manifest-only failure leaves the
// snapshot durable (orphan adoption covers a crash before the manifest
// catches up) and schedules a manifest rewrite.
func (s *Store) Save(sn Snapshot) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.saveLocked(sn)
}

func (s *Store) saveLocked(sn Snapshot) error {
	if sn.Name == "" {
		return errors.New("store: empty scenario name")
	}
	if sn.SavedAtUnixMS == 0 {
		sn.SavedAtUnixMS = time.Now().UnixMilli()
	}
	payload, err := json.Marshal(sn)
	if err != nil {
		return fmt.Errorf("store: encoding scenario %q: %w", sn.Name, err)
	}
	blob := encodeEnvelope(payload)
	dir := filepath.Join(s.dir, scenariosDir, dirFor(sn.Name))
	path := filepath.Join(dir, snapshotFile)
	if err := s.retry(func() error { return s.atomicWrite(dir, path, blob, sn.Name) }); err != nil {
		s.met.Counter("xr_store_save_errors_total").Inc()
		s.dirty[sn.Name] = sn
		s.updateGauges()
		return fmt.Errorf("store: saving scenario %q: %w", sn.Name, err)
	}
	sum := sha256.Sum256(blob)
	s.manifest[sn.Name] = &manifestEntry{
		Name:           sn.Name,
		Dir:            dirFor(sn.Name),
		SnapshotSHA256: hex.EncodeToString(sum[:]),
		Bytes:          int64(len(blob)),
		SavedAtUnixMS:  sn.SavedAtUnixMS,
	}
	delete(s.dirty, sn.Name)
	if err := s.writeManifestLocked(); err != nil {
		s.met.Counter("xr_store_save_errors_total").Inc()
		s.updateGauges()
		return fmt.Errorf("store: saving manifest after scenario %q: %w", sn.Name, err)
	}
	s.met.Counter("xr_store_saves_total").Inc()
	s.updateGauges()
	return nil
}

// Delete removes a scenario's persisted state. The snapshot directory
// goes first, the manifest entry second: a crash in between leaves a
// manifest entry whose snapshot is missing (reported on the next boot),
// never a deleted tenant resurrected from an orphan snapshot.
func (s *Store) Delete(name string) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	delete(s.dirty, name)
	entry, tracked := s.manifest[name]
	dir := dirFor(name)
	if tracked {
		dir = entry.Dir
	}
	if err := s.retry(func() error { return os.RemoveAll(filepath.Join(s.dir, scenariosDir, dir)) }); err != nil {
		s.met.Counter("xr_store_save_errors_total").Inc()
		return fmt.Errorf("store: deleting scenario %q: %w", name, err)
	}
	if !tracked {
		s.updateGauges()
		return nil
	}
	delete(s.manifest, name)
	if err := s.writeManifestLocked(); err != nil {
		s.met.Counter("xr_store_save_errors_total").Inc()
		s.updateGauges()
		return fmt.Errorf("store: saving manifest after deleting %q: %w", name, err)
	}
	s.updateGauges()
	return nil
}

// writeManifestLocked rewrites the manifest (entries sorted by name)
// through the same envelope + atomic-write protocol as snapshots. On
// success any pending manifest debt is cleared; on failure it is
// recorded for the background loop.
func (s *Store) writeManifestLocked() error {
	var mp manifestPayload
	for _, e := range s.manifest {
		mp.Entries = append(mp.Entries, *e)
	}
	sort.Slice(mp.Entries, func(i, j int) bool { return mp.Entries[i].Name < mp.Entries[j].Name })
	payload, err := json.Marshal(mp)
	if err != nil {
		return fmt.Errorf("encoding manifest: %w", err)
	}
	blob := encodeEnvelope(payload)
	path := filepath.Join(s.dir, manifestFile)
	if err := s.retry(func() error { return s.atomicWrite(s.dir, path, blob, "manifest") }); err != nil {
		s.manifestDirty = true
		return err
	}
	s.manifestDirty = false
	return nil
}

// retry runs op up to the configured attempt count with capped
// exponential backoff between tries.
func (s *Store) retry(op func() error) error {
	delay := s.base
	var err error
	for i := 0; i < s.attempts; i++ {
		if err = op(); err == nil {
			return nil
		}
		if i+1 < s.attempts {
			time.Sleep(delay)
			if delay *= 2; delay > s.cap {
				delay = s.cap
			}
		}
	}
	return err
}

// atomicWrite is the torn-write-proof protocol: write blob to a temp file
// next to the target, fsync it, rename over the final path, then fsync
// the directory so the rename itself is durable. The fault hook fires
// before each step; a hook error means that step (and everything after)
// never happened — exactly what a crash at that point leaves behind. The
// ErrShortWrite sentinel additionally leaves a truncated temp file, the
// torn-write case.
func (s *Store) atomicWrite(dir, path string, blob []byte, key string) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	tmp := path + tmpSuffix
	if err := s.fault(SiteWrite, key); err != nil {
		if errors.Is(err, ErrShortWrite) {
			_ = os.WriteFile(tmp, blob[:len(blob)/2], 0o644)
		}
		return err
	}
	f, err := os.OpenFile(tmp, os.O_WRONLY|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return err
	}
	if _, err := f.Write(blob); err != nil {
		f.Close()
		return err
	}
	if err := s.fault(SiteSync, key); err != nil {
		f.Close()
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	if err := s.fault(SiteRename, key); err != nil {
		return err
	}
	if err := os.Rename(tmp, path); err != nil {
		return err
	}
	if err := s.fault(SiteSync, key+"/dir"); err != nil {
		return err
	}
	return syncDir(dir)
}

// syncDir fsyncs a directory so a completed rename survives power loss.
func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	defer d.Close()
	return d.Sync()
}

// ---------------------------------------------------------------------------
// Background re-persist.

func (s *Store) repersistLoop(interval time.Duration) {
	defer close(s.done)
	t := time.NewTicker(interval)
	defer t.Stop()
	for {
		select {
		case <-s.stop:
			return
		case <-t.C:
			s.flushDirty()
		}
	}
}

// flushDirty retries every deferred save (and a pending manifest rewrite)
// once; failures stay dirty for the next tick.
func (s *Store) flushDirty() {
	s.mu.Lock()
	defer s.mu.Unlock()
	names := make([]string, 0, len(s.dirty))
	for n := range s.dirty {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		sn := s.dirty[n]
		if err := s.saveLocked(sn); err != nil {
			s.log.Warn("deferred scenario save still failing", "scenario", n, "error", err.Error())
		} else {
			s.log.Info("deferred scenario save persisted", "scenario", n)
		}
	}
	if s.manifestDirty {
		if err := s.writeManifestLocked(); err != nil {
			s.log.Warn("deferred manifest save still failing", "error", err.Error())
		} else {
			s.log.Info("deferred manifest save persisted")
		}
	}
	s.updateGauges()
}

// ---------------------------------------------------------------------------
// Recovery.

// Recover replays the manifest against the on-disk state: stray temp
// files are discarded, every snapshot's checksum is re-verified, orphan
// snapshots (present on disk, absent from the manifest) are adopted with
// a WARN, and every damaged or conflicting artifact is quarantined. The
// manifest is then rewritten to the surviving set. Recover never fails on
// data damage — the returned error covers only an unusable directory
// (e.g. the scenarios/ tree cannot be listed).
func (s *Store) Recover() (*RecoveryReport, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	rep := &RecoveryReport{}
	s.removeStrayTmp()
	s.pruneQuarantineLocked(s.retention)

	man := s.readManifestLocked(rep)

	// Pass 1: manifest entries, in manifest order. First entry wins a
	// duplicated name; later claims are quarantined.
	claimed := make(map[string]bool) // scenario dirs owned by a recovered entry
	for i := range man.Entries {
		e := man.Entries[i]
		if _, dup := s.manifest[e.Name]; dup {
			// First entry won the name. Move the loser's directory aside
			// only when it is a different one — quarantining the path the
			// winner claimed would destroy the recovered tenant.
			src := s.scenarioDirPath(e.Dir)
			if claimed[e.Dir] {
				src = ""
			}
			s.quarantineLocked(rep, e.Name, src, "duplicate manifest entry for tenant name")
			continue
		}
		path := filepath.Join(s.scenarioDirPath(e.Dir), snapshotFile)
		sn, blob, err := s.readSnapshot(path, e.Name)
		switch {
		case err != nil && os.IsNotExist(err):
			s.quarantineLocked(rep, e.Name, "", "manifest references a missing snapshot")
			_ = os.RemoveAll(s.scenarioDirPath(e.Dir)) // drop any empty husk
			continue
		case err != nil:
			s.quarantineLocked(rep, e.Name, s.scenarioDirPath(e.Dir), fmt.Sprintf("snapshot verification failed: %v", err))
			continue
		case sn.Name != e.Name:
			s.quarantineLocked(rep, e.Name, s.scenarioDirPath(e.Dir), fmt.Sprintf("snapshot carries tenant %q, manifest expected %q", sn.Name, e.Name))
			continue
		}
		sum := sha256.Sum256(blob)
		if got := hex.EncodeToString(sum[:]); got != e.SnapshotSHA256 {
			// The envelope checksum already proved the file internally
			// consistent; a manifest digest mismatch means the manifest is
			// stale (e.g. a crash between snapshot rename and manifest
			// write on a re-save). The snapshot is the newer truth.
			s.log.Warn("snapshot digest differs from manifest; adopting the snapshot",
				"scenario", e.Name, "manifest_sha256", e.SnapshotSHA256, "snapshot_sha256", got)
			e.SnapshotSHA256 = got
			e.Bytes = int64(len(blob))
			e.SavedAtUnixMS = sn.SavedAtUnixMS
		}
		entry := e
		s.manifest[e.Name] = &entry
		claimed[e.Dir] = true
		rep.Recovered = append(rep.Recovered, *sn)
		s.met.Counter("xr_store_recoveries_total").Inc()
	}

	// Pass 2: orphan scenario directories (on disk, not claimed by the
	// manifest). Valid ones are adopted; damage is quarantined.
	dirs, err := os.ReadDir(filepath.Join(s.dir, scenariosDir))
	if err != nil {
		return nil, fmt.Errorf("store: listing %s: %w", filepath.Join(s.dir, scenariosDir), err)
	}
	for _, d := range dirs {
		if !d.IsDir() || claimed[d.Name()] {
			continue
		}
		dirPath := s.scenarioDirPath(d.Name())
		path := filepath.Join(dirPath, snapshotFile)
		sn, blob, err := s.readSnapshot(path, d.Name())
		switch {
		case err != nil && os.IsNotExist(err):
			_ = os.RemoveAll(dirPath) // empty husk (e.g. interrupted delete)
			continue
		case err != nil:
			s.quarantineLocked(rep, "", dirPath, fmt.Sprintf("orphan snapshot verification failed: %v", err))
			continue
		}
		if _, taken := s.manifest[sn.Name]; taken {
			s.quarantineLocked(rep, sn.Name, dirPath, "orphan snapshot duplicates a recovered tenant name")
			continue
		}
		sum := sha256.Sum256(blob)
		s.manifest[sn.Name] = &manifestEntry{
			Name:           sn.Name,
			Dir:            d.Name(),
			SnapshotSHA256: hex.EncodeToString(sum[:]),
			Bytes:          int64(len(blob)),
			SavedAtUnixMS:  sn.SavedAtUnixMS,
		}
		rep.Recovered = append(rep.Recovered, *sn)
		rep.Adopted = append(rep.Adopted, sn.Name)
		s.met.Counter("xr_store_recoveries_total").Inc()
		s.log.Warn("adopted orphan snapshot absent from manifest", "scenario", sn.Name, "dir", d.Name())
	}

	// Converge the manifest to the surviving set; a failure here is debt
	// for the background loop, not a boot failure.
	if err := s.writeManifestLocked(); err != nil {
		s.log.Warn("rewriting manifest after recovery failed; deferred", "error", err.Error())
	}
	s.updateGauges()
	return rep, nil
}

// readManifestLocked loads the manifest, quarantining a damaged one (the
// orphan-adoption pass then rebuilds state from the snapshots themselves).
func (s *Store) readManifestLocked(rep *RecoveryReport) manifestPayload {
	var mp manifestPayload
	path := filepath.Join(s.dir, manifestFile)
	if _, err := os.Stat(path); os.IsNotExist(err) {
		return mp
	}
	if err := s.fault(SiteRead, "manifest"); err != nil {
		s.quarantineLocked(rep, "", path, fmt.Sprintf("manifest unreadable: %v", err))
		return manifestPayload{}
	}
	data, err := os.ReadFile(path)
	if err != nil {
		s.quarantineLocked(rep, "", path, fmt.Sprintf("manifest unreadable: %v", err))
		return manifestPayload{}
	}
	payload, err := decodeEnvelope(data)
	if err == nil {
		err = json.Unmarshal(payload, &mp)
	}
	if err != nil {
		s.quarantineLocked(rep, "", path, fmt.Sprintf("manifest verification failed: %v", err))
		return manifestPayload{}
	}
	return mp
}

// readSnapshot reads and fully verifies one snapshot file: fault hook,
// envelope (magic, version, length, checksum), then JSON decode.
func (s *Store) readSnapshot(path, key string) (*Snapshot, []byte, error) {
	if err := s.fault(SiteRead, key); err != nil {
		return nil, nil, fmt.Errorf("%w: injected read fault: %v", ErrCorrupt, err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, nil, err
	}
	payload, err := decodeEnvelope(data)
	if err != nil {
		return nil, nil, err
	}
	var sn Snapshot
	if err := json.Unmarshal(payload, &sn); err != nil {
		return nil, nil, fmt.Errorf("%w: payload is not valid JSON: %v", ErrCorrupt, err)
	}
	return &sn, data, nil
}

// Quarantine sets aside a tracked scenario whose snapshot is damaged at a
// level the store cannot see (the server calls this when a recovered
// snapshot fails to rebuild through the registry). The snapshot moves to
// quarantine/, the manifest drops the entry, and the record is reported.
func (s *Store) Quarantine(name string, reason error) QuarantineRecord {
	s.mu.Lock()
	defer s.mu.Unlock()
	delete(s.dirty, name)
	dir := dirFor(name)
	if e, ok := s.manifest[name]; ok {
		dir = e.Dir
	}
	rep := &RecoveryReport{}
	s.quarantineLocked(rep, name, s.scenarioDirPath(dir), reason.Error())
	delete(s.manifest, name)
	if err := s.writeManifestLocked(); err != nil {
		s.log.Warn("rewriting manifest after quarantine failed; deferred", "error", err.Error())
	}
	s.updateGauges()
	return rep.Quarantined[0]
}

// quarantineLocked moves src (a file or directory; "" for nothing on
// disk) into quarantine/ under a name suffixed with a fresh request-style
// ID, records it, and logs at ERROR.
func (s *Store) quarantineLocked(rep *RecoveryReport, name, src, reason string) {
	rec := QuarantineRecord{ID: newID(), Name: name, Reason: reason}
	if src != "" {
		dest := filepath.Join(s.dir, quarantineDir, filepath.Base(src)+"-"+rec.ID)
		if err := os.Rename(src, dest); err != nil && !os.IsNotExist(err) {
			// Renaming within one filesystem should not fail; if it does,
			// remove the artifact so the damage cannot re-trip every boot.
			s.log.Warn("quarantine rename failed; removing artifact", "src", src, "error", err.Error())
			_ = os.RemoveAll(src)
		} else if err == nil {
			if rel, rerr := filepath.Rel(s.dir, dest); rerr == nil {
				rec.Path = rel
			} else {
				rec.Path = dest
			}
		}
	}
	s.quarantined = append(s.quarantined, rec)
	s.met.Counter("xr_store_quarantines_total").Inc()
	s.log.Error("scenario quarantined",
		"request_id", rec.ID, "scenario", name, "path", rec.Path, "reason", reason)
	rep.Quarantined = append(rep.Quarantined, rec)
}

// removeStrayTmp discards temp files left by interrupted writes; they
// were never renamed into place, so they carry no committed state.
func (s *Store) removeStrayTmp() {
	drop := func(dir string) {
		entries, err := os.ReadDir(dir)
		if err != nil {
			return
		}
		for _, e := range entries {
			if !e.IsDir() && strings.HasSuffix(e.Name(), tmpSuffix) {
				_ = os.Remove(filepath.Join(dir, e.Name()))
			}
		}
	}
	drop(s.dir)
	dirs, err := os.ReadDir(filepath.Join(s.dir, scenariosDir))
	if err != nil {
		return
	}
	for _, d := range dirs {
		if d.IsDir() {
			drop(s.scenarioDirPath(d.Name()))
		}
	}
}

// ---------------------------------------------------------------------------
// Status.

// Status reports the store's current state (sorted by scenario name).
func (s *Store) Status() Status {
	s.mu.Lock()
	defer s.mu.Unlock()
	st := Status{
		DataDir:     s.dir,
		Persisted:   len(s.manifest),
		Dirty:       len(s.dirty),
		Quarantined: len(s.quarantined),
		Quarantine:  append([]QuarantineRecord(nil), s.quarantined...),
	}
	for name, e := range s.manifest {
		st.Scenarios = append(st.Scenarios, EntryStatus{
			Name:          name,
			Bytes:         e.Bytes,
			SHA256:        e.SnapshotSHA256,
			SavedAtUnixMS: e.SavedAtUnixMS,
			Dirty:         hasKey(s.dirty, name),
		})
	}
	for name := range s.dirty {
		if _, tracked := s.manifest[name]; !tracked {
			st.Scenarios = append(st.Scenarios, EntryStatus{Name: name, Dirty: true})
		}
	}
	sort.Slice(st.Scenarios, func(i, j int) bool { return st.Scenarios[i].Name < st.Scenarios[j].Name })
	return st
}

func hasKey(m map[string]Snapshot, k string) bool { _, ok := m[k]; return ok }

func (s *Store) updateGauges() {
	s.met.Gauge("xr_store_persisted").Set(int64(len(s.manifest)))
	s.met.Gauge("xr_store_dirty").Set(int64(len(s.dirty)))
	s.met.Gauge("xr_store_quarantined").Set(int64(len(s.quarantined)))
}

func (s *Store) scenarioDirPath(dir string) string {
	return filepath.Join(s.dir, scenariosDir, dir)
}

// ---------------------------------------------------------------------------
// Helpers.

// dirFor maps a tenant name to its directory under scenarios/: the name
// itself when it is short and filesystem-safe, else a hashed form. The
// manifest records the mapping, so recovery never re-derives it.
func dirFor(name string) string {
	if name == "" || name == "." || name == ".." || len(name) > 64 {
		return hashedDir(name)
	}
	for i := 0; i < len(name); i++ {
		c := name[i]
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c >= '0' && c <= '9',
			c == '-', c == '_', c == '.':
		default:
			return hashedDir(name)
		}
	}
	return name
}

func hashedDir(name string) string {
	sum := sha256.Sum256([]byte(name))
	return "h-" + hex.EncodeToString(sum[:8])
}

// newID returns a 16-hex-char random ID, the same request-style shape the
// server stamps on HTTP requests, so quarantine ERROR log lines correlate
// like any other request-scoped record.
func newID() string {
	var b [8]byte
	if _, err := rand.Read(b[:]); err != nil {
		return fmt.Sprintf("t%015x", time.Now().UnixNano())
	}
	return hex.EncodeToString(b[:])
}
