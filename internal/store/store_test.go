package store

import (
	"crypto/sha256"
	"encoding/binary"
	"encoding/json"
	"errors"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"repro/internal/faultkit"
)

// openTest opens a store on dir with fast retries and no background loop
// (tests that want the loop pass their own options).
func openTest(t *testing.T, dir string, opts Options) *Store {
	t.Helper()
	if opts.RetryAttempts == 0 {
		opts.RetryAttempts = 2
	}
	if opts.RetryBase == 0 {
		opts.RetryBase = time.Millisecond
	}
	if opts.RepersistInterval == 0 {
		opts.RepersistInterval = -1
	}
	s, err := Open(dir, opts)
	if err != nil {
		t.Fatalf("Open(%s): %v", dir, err)
	}
	t.Cleanup(s.Close)
	return s
}

func snap(name string) Snapshot {
	return Snapshot{
		Name:    name,
		Mapping: "source S(x).\ntarget T(x).\ntgd S(x) -> T(x).\n",
		Facts:   "S(a). S(b).\n",
		Queries: "q(x) :- T(x).\n",
	}
}

func recoveredNames(rep *RecoveryReport) []string {
	var names []string
	for _, sn := range rep.Recovered {
		names = append(names, sn.Name)
	}
	return names
}

func TestEnvelopeRoundTrip(t *testing.T) {
	payload := []byte(`{"hello":"world"}`)
	blob := encodeEnvelope(payload)
	got, err := decodeEnvelope(blob)
	if err != nil {
		t.Fatalf("decodeEnvelope: %v", err)
	}
	if string(got) != string(payload) {
		t.Fatalf("payload round-trip: got %q", got)
	}
	// Every single-byte flip anywhere in the file must be detected.
	for i := 0; i < len(blob); i++ {
		mut := append([]byte(nil), blob...)
		mut[i] ^= 0x40
		if _, err := decodeEnvelope(mut); err == nil {
			t.Fatalf("bit flip at offset %d went undetected", i)
		}
	}
	// Every truncation must be detected.
	for i := 0; i < len(blob); i++ {
		if _, err := decodeEnvelope(blob[:i]); err == nil {
			t.Fatalf("truncation to %d bytes went undetected", i)
		}
	}
}

func TestEnvelopeVersionSkew(t *testing.T) {
	blob := encodeEnvelope([]byte(`{}`))
	// Stamp a future version and re-checksum so only the version differs.
	binary.BigEndian.PutUint32(blob[magicLen:magicLen+4], CurrentVersion+1)
	h := sha256.New()
	h.Write(blob[magicLen : magicLen+12])
	h.Write(blob[headerLen:])
	copy(blob[magicLen+12:headerLen], h.Sum(nil))

	_, err := decodeEnvelope(blob)
	if !errors.Is(err, ErrStoreVersion) {
		t.Fatalf("future version: err = %v, want ErrStoreVersion", err)
	}
	var ve *VersionError
	if !errors.As(err, &ve) || ve.Got != CurrentVersion+1 || ve.Want != CurrentVersion {
		t.Fatalf("future version: err = %#v, want *VersionError{Got: %d, Want: %d}", err, CurrentVersion+1, CurrentVersion)
	}
	if errors.Is(err, ErrCorrupt) {
		t.Fatalf("version skew must not report as corruption: %v", err)
	}
}

func TestSaveRecoverRoundTrip(t *testing.T) {
	dir := t.TempDir()
	s := openTest(t, dir, Options{})
	for _, name := range []string{"alpha", "beta"} {
		if err := s.Save(snap(name)); err != nil {
			t.Fatalf("Save(%s): %v", name, err)
		}
	}
	st := s.Status()
	if st.Persisted != 2 || st.Dirty != 0 || st.Quarantined != 0 {
		t.Fatalf("status after saves = %+v", st)
	}

	s2 := openTest(t, dir, Options{})
	rep, err := s2.Recover()
	if err != nil {
		t.Fatalf("Recover: %v", err)
	}
	if len(rep.Recovered) != 2 || len(rep.Quarantined) != 0 || len(rep.Adopted) != 0 {
		t.Fatalf("report = %+v", rep)
	}
	for _, sn := range rep.Recovered {
		want := snap(sn.Name)
		if sn.Mapping != want.Mapping || sn.Facts != want.Facts || sn.Queries != want.Queries {
			t.Fatalf("recovered %s differs from saved: %+v", sn.Name, sn)
		}
	}
}

func TestRecoverEmptyDataDir(t *testing.T) {
	s := openTest(t, t.TempDir(), Options{})
	rep, err := s.Recover()
	if err != nil {
		t.Fatalf("Recover on empty dir: %v", err)
	}
	if len(rep.Recovered) != 0 || len(rep.Quarantined) != 0 {
		t.Fatalf("report on empty dir = %+v", rep)
	}
	if st := s.Status(); st.Persisted != 0 {
		t.Fatalf("status on empty dir = %+v", st)
	}
}

func TestRecoverMissingSnapshot(t *testing.T) {
	dir := t.TempDir()
	s := openTest(t, dir, Options{})
	if err := s.Save(snap("gone")); err != nil {
		t.Fatal(err)
	}
	if err := s.Save(snap("stays")); err != nil {
		t.Fatal(err)
	}
	if err := os.RemoveAll(filepath.Join(dir, scenariosDir, "gone")); err != nil {
		t.Fatal(err)
	}

	s2 := openTest(t, dir, Options{})
	rep, err := s2.Recover()
	if err != nil {
		t.Fatalf("Recover: %v", err)
	}
	if got := recoveredNames(rep); len(got) != 1 || got[0] != "stays" {
		t.Fatalf("recovered = %v, want [stays]", got)
	}
	if len(rep.Quarantined) != 1 || rep.Quarantined[0].Name != "gone" ||
		!strings.Contains(rep.Quarantined[0].Reason, "missing snapshot") {
		t.Fatalf("quarantine records = %+v", rep.Quarantined)
	}
	if rep.Quarantined[0].ID == "" {
		t.Fatal("quarantine record lacks an ID")
	}
	// The record for a missing file has nothing on disk to move.
	if rep.Quarantined[0].Path != "" {
		t.Fatalf("missing-snapshot record has path %q", rep.Quarantined[0].Path)
	}
}

func TestRecoverAdoptsOrphanSnapshot(t *testing.T) {
	dir := t.TempDir()
	s := openTest(t, dir, Options{})
	if err := s.Save(snap("tracked")); err != nil {
		t.Fatal(err)
	}
	if err := s.Save(snap("orphan")); err != nil {
		t.Fatal(err)
	}
	// Roll the manifest back to only "tracked", simulating a crash after
	// orphan's snapshot rename but before its manifest write.
	var mp manifestPayload
	blob, err := os.ReadFile(filepath.Join(dir, manifestFile))
	if err != nil {
		t.Fatal(err)
	}
	payload, err := decodeEnvelope(blob)
	if err != nil {
		t.Fatal(err)
	}
	if err := json.Unmarshal(payload, &mp); err != nil {
		t.Fatal(err)
	}
	var kept []manifestEntry
	for _, e := range mp.Entries {
		if e.Name == "tracked" {
			kept = append(kept, e)
		}
	}
	rolled, err := json.Marshal(manifestPayload{Entries: kept})
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, manifestFile), encodeEnvelope(rolled), 0o644); err != nil {
		t.Fatal(err)
	}

	s2 := openTest(t, dir, Options{})
	rep, err := s2.Recover()
	if err != nil {
		t.Fatalf("Recover: %v", err)
	}
	if got := recoveredNames(rep); len(got) != 2 {
		t.Fatalf("recovered = %v, want tracked + orphan", got)
	}
	if len(rep.Adopted) != 1 || rep.Adopted[0] != "orphan" {
		t.Fatalf("adopted = %v, want [orphan]", rep.Adopted)
	}
	if len(rep.Quarantined) != 0 {
		t.Fatalf("quarantined = %+v, want none", rep.Quarantined)
	}

	// The rewritten manifest converged: a third boot adopts nothing.
	s3 := openTest(t, dir, Options{})
	rep3, err := s3.Recover()
	if err != nil {
		t.Fatal(err)
	}
	if len(rep3.Recovered) != 2 || len(rep3.Adopted) != 0 {
		t.Fatalf("post-convergence report = %+v", rep3)
	}
}

func TestRecoverDuplicateManifestEntries(t *testing.T) {
	dir := t.TempDir()
	s := openTest(t, dir, Options{})
	if err := s.Save(snap("twin")); err != nil {
		t.Fatal(err)
	}
	// Duplicate the manifest entry for the same tenant and directory.
	blob, err := os.ReadFile(filepath.Join(dir, manifestFile))
	if err != nil {
		t.Fatal(err)
	}
	payload, err := decodeEnvelope(blob)
	if err != nil {
		t.Fatal(err)
	}
	var mp manifestPayload
	if err := json.Unmarshal(payload, &mp); err != nil {
		t.Fatal(err)
	}
	mp.Entries = append(mp.Entries, mp.Entries[0])
	doubled, err := json.Marshal(mp)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, manifestFile), encodeEnvelope(doubled), 0o644); err != nil {
		t.Fatal(err)
	}

	s2 := openTest(t, dir, Options{})
	rep, err := s2.Recover()
	if err != nil {
		t.Fatalf("Recover: %v", err)
	}
	// First entry wins; the duplicate is recorded without destroying the
	// winner's snapshot (both entries point at the same directory).
	if got := recoveredNames(rep); len(got) != 1 || got[0] != "twin" {
		t.Fatalf("recovered = %v, want [twin]", got)
	}
	if len(rep.Quarantined) != 1 || !strings.Contains(rep.Quarantined[0].Reason, "duplicate") {
		t.Fatalf("quarantined = %+v, want one duplicate record", rep.Quarantined)
	}
	if _, err := os.Stat(filepath.Join(dir, scenariosDir, "twin", snapshotFile)); err != nil {
		t.Fatalf("winner's snapshot was disturbed: %v", err)
	}
}

func TestRecoverQuarantinesCorruptSnapshot(t *testing.T) {
	for _, tc := range []struct {
		name    string
		corrupt func(t *testing.T, path string)
	}{
		{"bitflip", func(t *testing.T, path string) {
			data, err := os.ReadFile(path)
			if err != nil {
				t.Fatal(err)
			}
			data[len(data)-3] ^= 0x01
			if err := os.WriteFile(path, data, 0o644); err != nil {
				t.Fatal(err)
			}
		}},
		{"truncated", func(t *testing.T, path string) {
			data, err := os.ReadFile(path)
			if err != nil {
				t.Fatal(err)
			}
			if err := os.WriteFile(path, data[:len(data)/2], 0o644); err != nil {
				t.Fatal(err)
			}
		}},
		{"garbage", func(t *testing.T, path string) {
			if err := os.WriteFile(path, []byte("not an envelope"), 0o644); err != nil {
				t.Fatal(err)
			}
		}},
		{"future-version", func(t *testing.T, path string) {
			data, err := os.ReadFile(path)
			if err != nil {
				t.Fatal(err)
			}
			binary.BigEndian.PutUint32(data[magicLen:magicLen+4], CurrentVersion+7)
			h := sha256.New()
			h.Write(data[magicLen : magicLen+12])
			h.Write(data[headerLen:])
			copy(data[magicLen+12:headerLen], h.Sum(nil))
			if err := os.WriteFile(path, data, 0o644); err != nil {
				t.Fatal(err)
			}
		}},
	} {
		t.Run(tc.name, func(t *testing.T) {
			dir := t.TempDir()
			s := openTest(t, dir, Options{})
			if err := s.Save(snap("victim")); err != nil {
				t.Fatal(err)
			}
			if err := s.Save(snap("healthy")); err != nil {
				t.Fatal(err)
			}
			tc.corrupt(t, filepath.Join(dir, scenariosDir, "victim", snapshotFile))

			s2 := openTest(t, dir, Options{})
			rep, err := s2.Recover()
			if err != nil {
				t.Fatalf("Recover must survive damage: %v", err)
			}
			if got := recoveredNames(rep); len(got) != 1 || got[0] != "healthy" {
				t.Fatalf("recovered = %v, want [healthy]", got)
			}
			if len(rep.Quarantined) != 1 || rep.Quarantined[0].Name != "victim" {
				t.Fatalf("quarantined = %+v", rep.Quarantined)
			}
			rec := rep.Quarantined[0]
			if rec.Path == "" {
				t.Fatal("quarantine record lacks a destination path")
			}
			if _, err := os.Stat(filepath.Join(dir, rec.Path)); err != nil {
				t.Fatalf("quarantined artifact not at %s: %v", rec.Path, err)
			}
			if _, err := os.Stat(filepath.Join(dir, scenariosDir, "victim")); !os.IsNotExist(err) {
				t.Fatalf("victim directory still present after quarantine (err=%v)", err)
			}
		})
	}
}

func TestRecoverCorruptManifestRebuildsFromSnapshots(t *testing.T) {
	dir := t.TempDir()
	s := openTest(t, dir, Options{})
	if err := s.Save(snap("a")); err != nil {
		t.Fatal(err)
	}
	if err := s.Save(snap("b")); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, manifestFile), []byte("garbage"), 0o644); err != nil {
		t.Fatal(err)
	}

	s2 := openTest(t, dir, Options{})
	rep, err := s2.Recover()
	if err != nil {
		t.Fatalf("Recover: %v", err)
	}
	if got := recoveredNames(rep); len(got) != 2 {
		t.Fatalf("recovered = %v, want both tenants adopted from snapshots", got)
	}
	if len(rep.Adopted) != 2 {
		t.Fatalf("adopted = %v, want both", rep.Adopted)
	}
	if len(rep.Quarantined) != 1 || !strings.Contains(rep.Quarantined[0].Reason, "manifest") {
		t.Fatalf("quarantined = %+v, want the manifest", rep.Quarantined)
	}
}

func TestSaveDefersOnFaultAndBackgroundRepersists(t *testing.T) {
	dir := t.TempDir()
	var failures int
	hook := func(site, key string) error {
		// Fail the first several write attempts, then heal.
		if site == SiteWrite && failures < 4 {
			failures++
			return errors.New("disk on fire")
		}
		return nil
	}
	s, err := Open(dir, Options{
		FaultHook:         hook,
		RetryAttempts:     2,
		RetryBase:         time.Millisecond,
		RepersistInterval: 5 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	if err := s.Save(snap("deferred")); err == nil {
		t.Fatal("Save must report the deferral when all retries fail")
	}
	if st := s.Status(); st.Dirty != 1 || st.Persisted != 0 {
		t.Fatalf("status after failed save = %+v", st)
	}
	deadline := time.Now().Add(5 * time.Second)
	for {
		st := s.Status()
		if st.Dirty == 0 && st.Persisted == 1 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("background re-persist never caught up: %+v", st)
		}
		time.Sleep(5 * time.Millisecond)
	}

	s2 := openTest(t, dir, Options{})
	rep, err := s2.Recover()
	if err != nil {
		t.Fatal(err)
	}
	if got := recoveredNames(rep); len(got) != 1 || got[0] != "deferred" {
		t.Fatalf("recovered = %v, want [deferred]", got)
	}
}

func TestShortWriteLeavesNoCommittedState(t *testing.T) {
	dir := t.TempDir()
	hook := func(site, key string) error {
		if site == SiteWrite {
			return ErrShortWrite
		}
		return nil
	}
	s := openTest(t, dir, Options{FaultHook: hook, RetryAttempts: 1})
	if err := s.Save(snap("torn")); err == nil {
		t.Fatal("short write must fail the save")
	}
	// The torn temp file exists, the final path does not.
	sdir := filepath.Join(dir, scenariosDir, "torn")
	if _, err := os.Stat(filepath.Join(sdir, snapshotFile+tmpSuffix)); err != nil {
		t.Fatalf("torn temp file missing: %v", err)
	}
	if _, err := os.Stat(filepath.Join(sdir, snapshotFile)); !os.IsNotExist(err) {
		t.Fatalf("final snapshot must not exist after a torn write (err=%v)", err)
	}

	s2 := openTest(t, dir, Options{})
	rep, err := s2.Recover()
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Recovered) != 0 || len(rep.Quarantined) != 0 {
		t.Fatalf("report after torn write = %+v, want empty (tmp discarded)", rep)
	}
	if _, err := os.Stat(filepath.Join(sdir, snapshotFile+tmpSuffix)); !os.IsNotExist(err) {
		t.Fatalf("stray temp file survived recovery (err=%v)", err)
	}
}

func TestDeleteRemovesPersistedState(t *testing.T) {
	dir := t.TempDir()
	s := openTest(t, dir, Options{})
	if err := s.Save(snap("doomed")); err != nil {
		t.Fatal(err)
	}
	if err := s.Save(snap("kept")); err != nil {
		t.Fatal(err)
	}
	if err := s.Delete("doomed"); err != nil {
		t.Fatalf("Delete: %v", err)
	}
	if st := s.Status(); st.Persisted != 1 {
		t.Fatalf("status after delete = %+v", st)
	}
	// Deleting an untracked name is a no-op, not an error.
	if err := s.Delete("never-existed"); err != nil {
		t.Fatalf("Delete(untracked): %v", err)
	}

	s2 := openTest(t, dir, Options{})
	rep, err := s2.Recover()
	if err != nil {
		t.Fatal(err)
	}
	if got := recoveredNames(rep); len(got) != 1 || got[0] != "kept" {
		t.Fatalf("recovered = %v, want [kept]", got)
	}
}

func TestQuarantineAPIRemovesTenant(t *testing.T) {
	dir := t.TempDir()
	s := openTest(t, dir, Options{})
	if err := s.Save(snap("semantically-broken")); err != nil {
		t.Fatal(err)
	}
	rec := s.Quarantine("semantically-broken", errors.New("mapping no longer parses"))
	if rec.ID == "" || rec.Name != "semantically-broken" || rec.Path == "" {
		t.Fatalf("record = %+v", rec)
	}
	if st := s.Status(); st.Persisted != 0 || st.Quarantined != 1 {
		t.Fatalf("status after quarantine = %+v", st)
	}

	s2 := openTest(t, dir, Options{})
	rep, err := s2.Recover()
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Recovered) != 0 {
		t.Fatalf("quarantined tenant resurrected: %+v", rep.Recovered)
	}
}

func TestHashedDirForHostileNames(t *testing.T) {
	dir := t.TempDir()
	s := openTest(t, dir, Options{})
	hostile := "../../../etc/passwd or spaces / slashes"
	if err := s.Save(Snapshot{Name: hostile, Mapping: "m", Facts: "f"}); err != nil {
		t.Fatal(err)
	}
	// The snapshot landed inside scenarios/ under a hashed directory.
	entries, err := os.ReadDir(filepath.Join(dir, scenariosDir))
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 1 || !strings.HasPrefix(entries[0].Name(), "h-") {
		t.Fatalf("scenarios/ = %v, want one hashed dir", entries)
	}

	s2 := openTest(t, dir, Options{})
	rep, err := s2.Recover()
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Recovered) != 1 || rep.Recovered[0].Name != hostile {
		t.Fatalf("recovered = %+v", rep.Recovered)
	}
}

// TestFaultkitFSKinds proves the faultkit filesystem kinds drive the
// store's sites end to end: a rate-1 rename fault blocks every save, and
// the injector's Fired counter shows the runs were non-vacuous.
func TestFaultkitFSKinds(t *testing.T) {
	inj := faultkit.New(7, faultkit.Fault{Kind: faultkit.FSRenameErr})
	s := openTest(t, t.TempDir(), Options{FaultHook: inj.Hook(), RetryAttempts: 1})
	if err := s.Save(snap("blocked")); err == nil {
		t.Fatal("rename fault must fail the save")
	}
	if inj.Fired(faultkit.FSRenameErr) == 0 {
		t.Fatal("rename fault never fired")
	}

	// A seed-keyed read fault during recovery quarantines, never aborts.
	dir := t.TempDir()
	s2 := openTest(t, dir, Options{})
	if err := s2.Save(snap("readable")); err != nil {
		t.Fatal(err)
	}
	inj2 := faultkit.New(11, faultkit.Fault{Kind: faultkit.FSReadCorrupt, Match: "readable"})
	s3 := openTest(t, dir, Options{FaultHook: inj2.Hook()})
	rep, err := s3.Recover()
	if err != nil {
		t.Fatalf("Recover with read faults: %v", err)
	}
	if inj2.Fired(faultkit.FSReadCorrupt) == 0 {
		t.Fatal("read fault never fired")
	}
	if len(rep.Quarantined) != 1 || rep.Quarantined[0].Name != "readable" {
		t.Fatalf("report = %+v, want the unreadable snapshot quarantined", rep)
	}
}
