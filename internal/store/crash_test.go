package store

import (
	"errors"
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"testing"
	"time"

	"repro"
)

// The crash harness: every store write site is a kill point. A trial
// saves a seed-keyed batch of scenarios with a hook that "kills the
// process" at the k-th filesystem operation — every site at or after the
// kill fails, exactly like a crash — then reboots (a fresh Store over the
// same directory), recovers, and asserts:
//
//   - every committed scenario (Save returned nil pre-crash) is recovered
//     and answers its queries byte-identically to the pre-crash engine;
//   - an uncommitted scenario either vanished, was quarantined, or — when
//     the crash fell between snapshot rename and manifest write — was
//     adopted intact (full payload, identical answers);
//   - recovery NEVER fails, and every damaged artifact lands in
//     quarantine/ with a structured record.
//
// Seeds also steer torn writes (the partial temp file a power cut leaves)
// and post-crash bit flips (storage rot on a committed snapshot).

const crashMapping = `
source Observed(transcript, exons).
source Curated(transcript, exons).
target Gene(transcript, exons).
tgd obs: Observed(t, e) -> Gene(t, e).
tgd cur: Curated(t, e) -> Gene(t, e).
egd key: Gene(t, e1) & Gene(t, e2) -> e1 = e2.
`

const crashQueries = "q(t, e) :- Gene(t, e).\nanyGene() :- Gene(t, e).\n"

// crashSnapshot builds one seed-keyed scenario: a few transcripts whose
// observed/curated exon counts may conflict, so the instance is usually
// inconsistent and the answers exercise the real XR-certain path.
func crashSnapshot(name string, rng *rand.Rand) Snapshot {
	var facts strings.Builder
	for i := 0; i < 2+rng.Intn(3); i++ {
		fmt.Fprintf(&facts, "Observed(tx%d, %d). Curated(tx%d, %d).\n",
			i, 1+rng.Intn(3), i, 1+rng.Intn(3))
	}
	return Snapshot{Name: name, Mapping: crashMapping, Facts: facts.String(), Queries: crashQueries}
}

// crashAnswers renders every query's XR-certain answers for a snapshot's
// texts, deterministically, via the public engine API.
func crashAnswers(t *testing.T, sn Snapshot) string {
	t.Helper()
	sys, err := repro.Load(sn.Mapping)
	if err != nil {
		t.Fatalf("%s: mapping: %v", sn.Name, err)
	}
	in, err := sys.ParseFacts(sn.Facts)
	if err != nil {
		t.Fatalf("%s: facts: %v", sn.Name, err)
	}
	ex, err := sys.NewExchange(in)
	if err != nil {
		t.Fatalf("%s: exchange: %v", sn.Name, err)
	}
	qs, err := sys.ParseQueries(sn.Queries)
	if err != nil {
		t.Fatalf("%s: queries: %v", sn.Name, err)
	}
	var out strings.Builder
	for _, q := range qs {
		ans, err := ex.Answer(q)
		if err != nil {
			t.Fatalf("%s: answering %s: %v", sn.Name, q.Name(), err)
		}
		fmt.Fprintf(&out, "%s=%v;", q.Name(), ans.Tuples)
	}
	return out.String()
}

// killingHook fails every store filesystem operation from the killAt-th
// firing on (a dead process performs no further IO). When torn is set the
// first failing write site leaves a truncated temp file behind.
type killingHook struct {
	killAt int
	torn   bool
	fired  int
	killed bool
}

var errKilled = errors.New("crash harness: process killed here")

func (h *killingHook) hook(site, key string) error {
	n := h.fired
	h.fired++
	if n < h.killAt {
		return nil
	}
	h.killed = true
	if h.torn && site == SiteWrite {
		return fmt.Errorf("%w: torn by kill", ErrShortWrite)
	}
	return errKilled
}

func TestCrashRecoveryHarness(t *testing.T) {
	const (
		trials       = 60 // ≥ 50 per the acceptance bar
		sitesPerSave = 8  // snapshot (write, sync, rename, dirsync) + manifest (same)
		perTrial     = 2  // scenarios saved per trial
	)
	for seed := 0; seed < trials; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			t.Parallel()
			rng := rand.New(rand.NewSource(int64(seed)))
			dir := t.TempDir()

			// killAt sweeps every injection point across the trial budget,
			// including one "no kill" slot (killAt past the last firing).
			killAt := seed % (sitesPerSave*perTrial + 1)
			hook := &killingHook{killAt: killAt, torn: seed%3 == 0}

			s, err := Open(dir, Options{
				FaultHook:         hook.hook,
				RetryAttempts:     1, // a killed process does not retry
				RetryBase:         time.Millisecond,
				RepersistInterval: -1,
			})
			if err != nil {
				t.Fatalf("Open: %v", err)
			}
			var all []Snapshot
			wantAnswers := make(map[string]string)
			committed := make(map[string]bool)
			for i := 0; i < perTrial; i++ {
				sn := crashSnapshot(fmt.Sprintf("tenant-%d-%d", seed, i), rng)
				all = append(all, sn)
				wantAnswers[sn.Name] = crashAnswers(t, sn)
				if hook.killed {
					break // the process is dead; nothing further runs
				}
				if err := s.Save(sn); err == nil {
					committed[sn.Name] = true
				}
			}
			// The store is abandoned, not Closed: a kill flushes nothing.

			// Post-crash storage rot: some trials flip one byte in a
			// committed snapshot. That tenant must quarantine on boot.
			rotted := ""
			if seed%5 == 0 && len(committed) > 0 {
				var names []string
				for n := range committed {
					names = append(names, n)
				}
				sort.Strings(names)
				rotted = names[rng.Intn(len(names))]
				path := filepath.Join(dir, scenariosDir, dirFor(rotted), snapshotFile)
				data, err := os.ReadFile(path)
				if err != nil {
					t.Fatalf("reading %s for rot: %v", path, err)
				}
				data[rng.Intn(len(data))] ^= 1 << uint(rng.Intn(8))
				if err := os.WriteFile(path, data, 0o644); err != nil {
					t.Fatal(err)
				}
			}

			// Reboot: a fresh store over the same directory, no faults.
			s2, err := Open(dir, Options{RepersistInterval: -1})
			if err != nil {
				t.Fatalf("reboot Open must never fail: %v", err)
			}
			defer s2.Close()
			rep, err := s2.Recover()
			if err != nil {
				t.Fatalf("reboot Recover must never fail (killAt=%d): %v", killAt, err)
			}

			recovered := make(map[string]Snapshot)
			for _, sn := range rep.Recovered {
				recovered[sn.Name] = sn
			}
			quarantined := make(map[string]bool)
			for _, rec := range rep.Quarantined {
				if rec.ID == "" || rec.Reason == "" {
					t.Fatalf("quarantine record lacks id/reason: %+v", rec)
				}
				quarantined[rec.Name] = true
			}

			for _, sn := range all {
				got, ok := recovered[sn.Name]
				switch {
				case sn.Name == rotted:
					if ok {
						t.Fatalf("rotted tenant %s recovered instead of quarantined", sn.Name)
					}
					if !quarantined[sn.Name] {
						t.Fatalf("rotted tenant %s missing from quarantine records: %+v", sn.Name, rep.Quarantined)
					}
					continue
				case committed[sn.Name]:
					if !ok {
						t.Fatalf("committed tenant %s not recovered (killAt=%d, report=%+v)", sn.Name, killAt, rep)
					}
				case !ok:
					continue // uncommitted and absent: a clean crash outcome
				}
				// Recovered (committed, or adopted mid-manifest-write):
				// the payload must be intact and the answers byte-identical
				// to the pre-crash engine.
				if got.Mapping != sn.Mapping || got.Facts != sn.Facts || got.Queries != sn.Queries {
					t.Fatalf("tenant %s payload differs after recovery:\n got %+v\nwant %+v", sn.Name, got, sn)
				}
				if a := crashAnswers(t, got); a != wantAnswers[sn.Name] {
					t.Fatalf("tenant %s answers differ after recovery:\n got %s\nwant %s", sn.Name, a, wantAnswers[sn.Name])
				}
			}

			// A second boot over the recovered state is always clean: the
			// quarantine drained the damage and the manifest converged.
			s3, err := Open(dir, Options{RepersistInterval: -1})
			if err != nil {
				t.Fatal(err)
			}
			defer s3.Close()
			rep3, err := s3.Recover()
			if err != nil {
				t.Fatalf("second reboot: %v", err)
			}
			if len(rep3.Quarantined) != 0 || len(rep3.Adopted) != 0 {
				t.Fatalf("second reboot not clean: %+v", rep3)
			}
			if len(rep3.Recovered) != len(recovered) {
				t.Fatalf("second reboot recovered %d tenants, first recovered %d",
					len(rep3.Recovered), len(recovered))
			}
		})
	}
}
