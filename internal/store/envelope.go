package store

import (
	"bytes"
	"crypto/sha256"
	"encoding/binary"
	"errors"
	"fmt"
)

// The on-disk envelope shared by snapshots and the manifest: a fixed
// header followed by a JSON payload. Every field that matters for
// integrity is covered by the checksum, so a torn write, a truncation, or
// a bit flip anywhere in the file is detected on read.
//
//	offset  0  magic    8 bytes  "XRSTORE\x00"
//	offset  8  version  4 bytes  big-endian uint32
//	offset 12  length   8 bytes  big-endian uint64 payload length
//	offset 20  sha256  32 bytes  over version ‖ length ‖ payload
//	offset 52  payload          JSON
//
// The checksum deliberately includes the version and length words: a
// corrupted header cannot redirect the reader to a different (valid)
// payload interpretation.

const (
	// CurrentVersion is the envelope version this build writes and the
	// newest it can read. A file stamped with a later version is rejected
	// with an error matching ErrStoreVersion — a rolled-back binary must
	// refuse a future format rather than misparse it.
	CurrentVersion = 1

	magicLen  = 8
	headerLen = magicLen + 4 + 8 + sha256.Size
)

var magic = [magicLen]byte{'X', 'R', 'S', 'T', 'O', 'R', 'E', 0}

// Typed store errors, matched with errors.Is.
var (
	// ErrCorrupt reports a snapshot or manifest that failed envelope
	// verification: bad magic, truncated header or payload, length
	// mismatch, or checksum mismatch. During recovery a corrupt artifact
	// is quarantined, never fatal.
	ErrCorrupt = errors.New("store: corrupt file")
	// ErrStoreVersion reports an envelope stamped with a version newer
	// than CurrentVersion. The concrete error is a *VersionError.
	ErrStoreVersion = errors.New("store: unsupported store version")
	// ErrShortWrite is a fault-hook sentinel: a hook returning an error
	// matching it at the store.write site makes the store leave a
	// truncated prefix of the blob in the temp file before failing,
	// simulating a torn write (power loss mid-write).
	ErrShortWrite = errors.New("store: simulated short write")
)

// VersionError describes an envelope version this build cannot read. It
// matches ErrStoreVersion under errors.Is.
type VersionError struct {
	Got  uint32 // version stamped in the file
	Want uint32 // newest version this build reads (CurrentVersion)
}

func (e *VersionError) Error() string {
	return fmt.Sprintf("store: file version %d is newer than supported version %d", e.Got, e.Want)
}

// Unwrap makes errors.Is(err, ErrStoreVersion) hold.
func (e *VersionError) Unwrap() error { return ErrStoreVersion }

// encodeEnvelope frames payload in the checksummed envelope.
func encodeEnvelope(payload []byte) []byte {
	buf := make([]byte, headerLen+len(payload))
	copy(buf[:magicLen], magic[:])
	binary.BigEndian.PutUint32(buf[magicLen:magicLen+4], CurrentVersion)
	binary.BigEndian.PutUint64(buf[magicLen+4:magicLen+12], uint64(len(payload)))
	copy(buf[headerLen:], payload)
	h := sha256.New()
	h.Write(buf[magicLen : magicLen+12]) // version ‖ length
	h.Write(payload)
	copy(buf[magicLen+12:headerLen], h.Sum(nil))
	return buf
}

// decodeEnvelope verifies the envelope and returns the payload. Errors
// match ErrCorrupt, except a future version which matches ErrStoreVersion.
func decodeEnvelope(data []byte) ([]byte, error) {
	if len(data) < headerLen {
		return nil, fmt.Errorf("%w: %d bytes is shorter than the %d-byte header", ErrCorrupt, len(data), headerLen)
	}
	if !bytes.Equal(data[:magicLen], magic[:]) {
		return nil, fmt.Errorf("%w: bad magic", ErrCorrupt)
	}
	version := binary.BigEndian.Uint32(data[magicLen : magicLen+4])
	if version > CurrentVersion {
		return nil, &VersionError{Got: version, Want: CurrentVersion}
	}
	length := binary.BigEndian.Uint64(data[magicLen+4 : magicLen+12])
	if length != uint64(len(data)-headerLen) {
		return nil, fmt.Errorf("%w: header declares %d payload bytes, file carries %d", ErrCorrupt, length, len(data)-headerLen)
	}
	h := sha256.New()
	h.Write(data[magicLen : magicLen+12])
	h.Write(data[headerLen:])
	if !bytes.Equal(h.Sum(nil), data[magicLen+12:headerLen]) {
		return nil, fmt.Errorf("%w: checksum mismatch", ErrCorrupt)
	}
	return data[headerLen:], nil
}
