package cq

import (
	"math/rand"
	"testing"

	"repro/internal/instance"
	"repro/internal/logic"
	"repro/internal/schema"
	"repro/internal/symtab"
)

func contFixture() (*schema.Catalog, *schema.Relation, *schema.Relation) {
	cat := schema.NewCatalog()
	e := cat.MustAdd("E", 2)
	p := cat.MustAdd("P", 1)
	return cat, e, p
}

func atom(cat *schema.Catalog, r *schema.Relation, ts ...logic.Term) logic.Atom {
	return logic.NewAtom(cat, r, ts...)
}

func TestContainmentBasic(t *testing.T) {
	cat, e, _ := contFixture()
	// q1(x) :- E(x,y), E(y,z)    (paths of length 2)
	q1 := &logic.CQ{
		Head: []logic.Term{logic.V("x")},
		Body: []logic.Atom{atom(cat, e, logic.V("x"), logic.V("y")), atom(cat, e, logic.V("y"), logic.V("z"))},
	}
	// q2(x) :- E(x,y)            (paths of length 1)
	q2 := &logic.CQ{
		Head: []logic.Term{logic.V("x")},
		Body: []logic.Atom{atom(cat, e, logic.V("x"), logic.V("y"))},
	}
	if !Contains(cat, q1, q2) {
		t.Fatal("length-2 paths should be contained in length-1 paths")
	}
	if Contains(cat, q2, q1) {
		t.Fatal("length-1 paths are not all length-2 paths")
	}
	if Equivalent(cat, q1, q2) {
		t.Fatal("not equivalent")
	}
}

func TestContainmentWithConstants(t *testing.T) {
	cat, e, _ := contFixture()
	u := symtab.NewUniverse()
	a := u.Const("a")
	// q1(x) :- E(x, a)  vs  q2(x) :- E(x, y)
	q1 := &logic.CQ{Head: []logic.Term{logic.V("x")},
		Body: []logic.Atom{atom(cat, e, logic.V("x"), logic.C(a))}}
	q2 := &logic.CQ{Head: []logic.Term{logic.V("x")},
		Body: []logic.Atom{atom(cat, e, logic.V("x"), logic.V("y"))}}
	if !Contains(cat, q1, q2) || Contains(cat, q2, q1) {
		t.Fatal("constant specialization containment wrong")
	}
}

func TestEquivalentUpToRenaming(t *testing.T) {
	cat, e, _ := contFixture()
	q1 := &logic.CQ{Head: []logic.Term{logic.V("x")},
		Body: []logic.Atom{atom(cat, e, logic.V("x"), logic.V("y"))}}
	q2 := &logic.CQ{Head: []logic.Term{logic.V("u")},
		Body: []logic.Atom{atom(cat, e, logic.V("u"), logic.V("w"))}}
	if !Equivalent(cat, q1, q2) {
		t.Fatal("alpha-renamed queries should be equivalent")
	}
}

func TestMinimizeRedundantAtom(t *testing.T) {
	cat, e, _ := contFixture()
	// q(x) :- E(x,y), E(x,z): E(x,z) folds onto E(x,y) — core has 1 atom.
	q := &logic.CQ{
		Head: []logic.Term{logic.V("x")},
		Body: []logic.Atom{
			atom(cat, e, logic.V("x"), logic.V("y")),
			atom(cat, e, logic.V("x"), logic.V("z")),
		},
	}
	min := Minimize(cat, q)
	if len(min.Body) != 1 {
		t.Fatalf("core size = %d, want 1", len(min.Body))
	}
	if !Equivalent(cat, q, min) {
		t.Fatal("minimized query not equivalent")
	}
}

func TestMinimizeKeepsNonRedundant(t *testing.T) {
	cat, e, _ := contFixture()
	// q(x,z) :- E(x,y), E(y,z): both atoms needed.
	q := &logic.CQ{
		Head: []logic.Term{logic.V("x"), logic.V("z")},
		Body: []logic.Atom{
			atom(cat, e, logic.V("x"), logic.V("y")),
			atom(cat, e, logic.V("y"), logic.V("z")),
		},
	}
	min := Minimize(cat, q)
	if len(min.Body) != 2 {
		t.Fatalf("core size = %d, want 2", len(min.Body))
	}
}

func TestMinimizeTriangleWithPendant(t *testing.T) {
	cat, e, _ := contFixture()
	// Boolean q() :- E(x,y),E(y,z),E(z,x),E(x,w): the pendant edge E(x,w)
	// folds onto E(x,y); the triangle does not fold onto anything smaller.
	q := &logic.CQ{
		Head: nil,
		Body: []logic.Atom{
			atom(cat, e, logic.V("x"), logic.V("y")),
			atom(cat, e, logic.V("y"), logic.V("z")),
			atom(cat, e, logic.V("z"), logic.V("x")),
			atom(cat, e, logic.V("x"), logic.V("w")),
		},
	}
	min := Minimize(cat, q)
	if len(min.Body) != 3 {
		t.Fatalf("core size = %d, want 3", len(min.Body))
	}
}

func TestMinimizeUCQSubsumption(t *testing.T) {
	cat, e, _ := contFixture()
	q := &logic.UCQ{Name: "q", Arity: 1, Clauses: []logic.CQ{
		// clause 0: E(x,y) — most general
		{Head: []logic.Term{logic.V("x")}, Body: []logic.Atom{atom(cat, e, logic.V("x"), logic.V("y"))}},
		// clause 1: E(x,y), E(y,z) ⊆ clause 0 — redundant
		{Head: []logic.Term{logic.V("x")}, Body: []logic.Atom{
			atom(cat, e, logic.V("x"), logic.V("y")), atom(cat, e, logic.V("y"), logic.V("z"))}},
		// clause 2: duplicate of clause 0 (renamed) — deduplicated
		{Head: []logic.Term{logic.V("u")}, Body: []logic.Atom{atom(cat, e, logic.V("u"), logic.V("v"))}},
	}}
	min := MinimizeUCQ(cat, q)
	if len(min.Clauses) != 1 {
		t.Fatalf("clauses = %d, want 1", len(min.Clauses))
	}
}

// TestContainmentSemanticsProperty cross-validates Contains against direct
// evaluation: if q1 ⊆ q2 then on random instances answers(q1) ⊆ answers(q2),
// and if not contained, some witness instance exists (we use the frozen
// instance itself as the witness).
func TestContainmentSemanticsProperty(t *testing.T) {
	cat, e, p := contFixture()
	u := symtab.NewUniverse()
	rng := rand.New(rand.NewSource(9))
	vars := []string{"x", "y", "z"}
	randCQ := func() *logic.CQ {
		n := 1 + rng.Intn(3)
		body := make([]logic.Atom, n)
		for i := range body {
			if rng.Intn(4) == 0 {
				body[i] = atom(cat, p, logic.V(vars[rng.Intn(len(vars))]))
			} else {
				body[i] = atom(cat, e, logic.V(vars[rng.Intn(len(vars))]), logic.V(vars[rng.Intn(len(vars))]))
			}
		}
		// Head: one variable from the body.
		var hv string
		for _, a := range body {
			for _, tm := range a.Terms {
				hv = tm.Var
			}
		}
		return &logic.CQ{Head: []logic.Term{logic.V(hv)}, Body: body}
	}
	dom := []symtab.Value{u.Const("c0"), u.Const("c1"), u.Const("c2")}
	for trial := 0; trial < 150; trial++ {
		q1, q2 := randCQ(), randCQ()
		contained := Contains(cat, q1, q2)
		// Evaluate on a random instance; containment must hold pointwise.
		in := instance.New(cat)
		for i := 0; i < 6; i++ {
			in.Add(e.ID, []symtab.Value{dom[rng.Intn(3)], dom[rng.Intn(3)]})
			if rng.Intn(2) == 0 {
				in.Add(p.ID, []symtab.Value{dom[rng.Intn(3)]})
			}
		}
		a1 := EvalUCQ(&logic.UCQ{Name: "q1", Arity: 1, Clauses: []logic.CQ{*q1}}, in)
		a2 := EvalUCQ(&logic.UCQ{Name: "q2", Arity: 1, Clauses: []logic.CQ{*q2}}, in)
		if contained {
			for _, tup := range a1.Tuples() {
				if !a2.Contains(tup) {
					t.Fatalf("trial %d: Contains=true but answers leak", trial)
				}
			}
		}
		// Minimization must preserve answers on the same instance.
		min := Minimize(cat, q1)
		am := EvalUCQ(&logic.UCQ{Name: "m", Arity: 1, Clauses: []logic.CQ{*min}}, in)
		if am.Len() != a1.Len() {
			t.Fatalf("trial %d: minimization changed answers (%d vs %d)", trial, am.Len(), a1.Len())
		}
	}
}
