package cq

import (
	"fmt"
	"sort"
	"testing"

	"repro/internal/logic"
	"repro/internal/symtab"
)

// TestForEachDeltaEnumeratesEachMatchOnce drives a two-atom join through
// several incremental batches and checks the semi-naive contract: every
// match is reported in exactly one ForEachDelta window — the one of the
// first batch in which all its body tuples exist.
func TestForEachDeltaEnumeratesEachMatchOnce(t *testing.T) {
	w := newWorld()
	e := w.rel("E")
	plan := Compile([]logic.Atom{
		logic.NewAtom(w.cat, e, logic.V("x"), logic.V("y")),
		logic.NewAtom(w.cat, e, logic.V("y"), logic.V("z")),
	})

	key := func(env []symtab.Value) string { return fmt.Sprintf("%v", env) }
	seen := map[string]int{}
	batches := [][][2]string{
		{{"a", "b"}, {"b", "c"}},
		{{"c", "d"}},
		{{"b", "e"}, {"e", "a"}},
	}
	old := uint64(0)
	for bi, batch := range batches {
		for _, tup := range batch {
			w.add("E", tup[0], tup[1])
		}
		plan.ForEachDelta(w.in, old, func(env []symtab.Value, rank []uint64, order []int) bool {
			k := key(env)
			if prev, dup := seen[k]; dup {
				t.Fatalf("match %s reported twice (batches %d and %d)", k, prev, bi)
			}
			seen[k] = bi
			if len(rank) != plan.NumAtoms() || len(order) != plan.NumAtoms() {
				t.Fatalf("rank/order length %d/%d, want %d", len(rank), len(order), plan.NumAtoms())
			}
			inDelta := false
			for _, g := range rank {
				if g == 0 || g > w.in.Gen() {
					t.Fatalf("rank %v outside instance generations", rank)
				}
				if g > old {
					inDelta = true
				}
			}
			if !inDelta {
				t.Fatalf("match %s uses no delta tuple (old=%d, rank=%v)", k, old, rank)
			}
			return true
		})
		old = w.in.Gen()
	}

	// The union over windows must equal a fresh full evaluation.
	full := map[string]bool{}
	plan.ForEach(w.in, func(env []symtab.Value) bool {
		full[key(env)] = true
		return true
	})
	if len(full) != len(seen) {
		t.Fatalf("delta union has %d matches, full evaluation %d", len(seen), len(full))
	}
	for k := range full {
		if _, ok := seen[k]; !ok {
			t.Fatalf("full evaluation match %s never reported by a delta window", k)
		}
	}
}

// TestForEachDeltaEmptyWindow: with old at the current generation, nothing
// is enumerated; with old = 0 the enumeration equals ForEach.
func TestForEachDeltaEmptyWindow(t *testing.T) {
	w := newWorld()
	w.add("E", "a", "b")
	w.add("E", "b", "c")
	e := w.rel("E")
	plan := Compile([]logic.Atom{logic.NewAtom(w.cat, e, logic.V("x"), logic.V("y"))})
	n := 0
	plan.ForEachDelta(w.in, w.in.Gen(), func([]symtab.Value, []uint64, []int) bool { n++; return true })
	if n != 0 {
		t.Fatalf("empty delta window enumerated %d matches", n)
	}
	plan.ForEachDelta(w.in, 0, func([]symtab.Value, []uint64, []int) bool { n++; return true })
	if n != 2 {
		t.Fatalf("zero-window enumeration = %d matches, want 2", n)
	}
}

// TestJoinOrderPrefersBoundAndSmall pins the planner heuristics the chase
// relies on: constants and already-bound variables come first, ties break
// toward the smaller relation.
func TestJoinOrderPrefersBoundAndSmall(t *testing.T) {
	w := newWorld()
	for i := 0; i < 30; i++ {
		w.add("E", "x", fmt.Sprintf("v%d", i))
	}
	w.add("P", "x")
	e, p := w.rel("E"), w.rel("P")
	plan := Compile([]logic.Atom{
		logic.NewAtom(w.cat, e, logic.V("a"), logic.V("b")),
		logic.NewAtom(w.cat, p, logic.V("a")),
	})
	order := plan.JoinOrder(w.in)
	if plan.base[order[0]].rel != p.ID {
		t.Fatalf("join order %v does not start with the small relation", order)
	}
	rels := plan.Relations()
	sort.Slice(rels, func(i, j int) bool { return rels[i] < rels[j] })
	if len(rels) != 2 {
		t.Fatalf("Relations() = %v, want the two distinct body relations", rels)
	}
}
