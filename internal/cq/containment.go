package cq

import (
	"repro/internal/logic"
	"repro/internal/schema"
	"repro/internal/symtab"
)

// This file implements the classic Chandra–Merlin machinery for conjunctive
// queries: containment via canonical instances and homomorphisms, semantic
// equivalence, and query minimization (computing the core). The pipelines
// use it to simplify the clause sets produced by shape expansion; it is
// exposed for general use.

// Contains reports whether q1 ⊆ q2 (every answer of q1 on every instance is
// an answer of q2), for single-clause conjunctive queries of equal arity.
// By the Chandra–Merlin theorem this holds iff there is a homomorphism from
// q2 to q1's canonical (frozen) instance mapping q2's head to q1's head.
func Contains(cat *schema.Catalog, q1, q2 *logic.CQ) bool {
	if len(q1.Head) != len(q2.Head) {
		return false
	}
	frozen := newFrozenCQ(cat, q1)
	return homIntoFrozen(q2, frozen)
}

// Equivalent reports whether two conjunctive queries are semantically
// equivalent (mutual containment).
func Equivalent(cat *schema.Catalog, q1, q2 *logic.CQ) bool {
	return Contains(cat, q1, q2) && Contains(cat, q2, q1)
}

// Minimize returns the core of a conjunctive query: an equivalent query
// with a minimal number of body atoms, computed by repeatedly attempting to
// drop an atom while preserving equivalence. The input is not modified.
func Minimize(cat *schema.Catalog, q *logic.CQ) *logic.CQ {
	cur := &logic.CQ{
		Head: append([]logic.Term(nil), q.Head...),
		Body: append([]logic.Atom(nil), q.Body...),
	}
	for changed := true; changed; {
		changed = false
		for i := 0; i < len(cur.Body); i++ {
			if len(cur.Body) == 1 {
				break
			}
			smaller := &logic.CQ{
				Head: cur.Head,
				Body: append(append([]logic.Atom(nil), cur.Body[:i]...), cur.Body[i+1:]...),
			}
			// Dropping an atom can only weaken the query (cur ⊆ smaller
			// always); dropping is safe when smaller ⊆ cur too. The
			// smaller query must remain safe (head variables bound).
			if smaller.Validate() != nil {
				continue
			}
			if Contains(cat, smaller, cur) {
				cur = smaller
				changed = true
				break
			}
		}
	}
	return cur
}

// MinimizeUCQ minimizes every clause of a UCQ and drops clauses subsumed by
// another clause (ci ⊆ cj for i ≠ j makes ci redundant in the union).
func MinimizeUCQ(cat *schema.Catalog, q *logic.UCQ) *logic.UCQ {
	out := &logic.UCQ{Name: q.Name, Arity: q.Arity}
	var minimized []*logic.CQ
	for i := range q.Clauses {
		minimized = append(minimized, Minimize(cat, &q.Clauses[i]))
	}
	for i, ci := range minimized {
		subsumed := false
		for j, cj := range minimized {
			if i == j {
				continue
			}
			if !Contains(cat, ci, cj) {
				continue
			}
			// ci ⊆ cj: redundant, unless cj ⊆ ci too (duplicates) — then
			// keep only the first of the pair.
			if !Contains(cat, cj, ci) || j < i {
				subsumed = true
				break
			}
		}
		if !subsumed {
			out.Clauses = append(out.Clauses, *ci)
		}
	}
	return out
}

// frozenCQ is the canonical instance of a conjunctive query: each variable
// becomes a fresh frozen constant (represented as a labeled null so it can
// never collide with real constants).
type frozenCQ struct {
	in   *instanceLike
	head []symtab.Value
}

// instanceLike is a minimal fact index for homomorphism checks, independent
// of a Universe (frozen constants are synthesized locally).
type instanceLike struct {
	facts map[schema.RelID][][]symtab.Value
}

func newFrozenCQ(cat *schema.Catalog, q *logic.CQ) *frozenCQ {
	frozen := &frozenCQ{in: &instanceLike{facts: make(map[schema.RelID][][]symtab.Value)}}
	vars := make(map[string]symtab.Value)
	next := 1
	freeze := func(t logic.Term) symtab.Value {
		if !t.IsVar() {
			return t.Val
		}
		v, ok := vars[t.Var]
		if !ok {
			v = symtab.Null(next) // frozen constant
			next++
			vars[t.Var] = v
		}
		return v
	}
	for _, a := range q.Body {
		tup := make([]symtab.Value, len(a.Terms))
		for i, t := range a.Terms {
			tup[i] = freeze(t)
		}
		frozen.in.facts[a.Rel] = append(frozen.in.facts[a.Rel], tup)
	}
	frozen.head = make([]symtab.Value, len(q.Head))
	for i, t := range q.Head {
		frozen.head[i] = freeze(t)
	}
	return frozen
}

// homIntoFrozen searches for a homomorphism from q's body into the frozen
// instance that maps q's head to the frozen head and fixes constants.
func homIntoFrozen(q *logic.CQ, frozen *frozenCQ) bool {
	sub := make(map[string]symtab.Value)
	// Pre-bind head terms.
	for i, t := range q.Head {
		want := frozen.head[i]
		if !t.IsVar() {
			if t.Val != want {
				return false
			}
			continue
		}
		if prev, ok := sub[t.Var]; ok {
			if prev != want {
				return false
			}
			continue
		}
		sub[t.Var] = want
	}
	return matchAtoms(q.Body, 0, sub, frozen.in)
}

func matchAtoms(body []logic.Atom, i int, sub map[string]symtab.Value, in *instanceLike) bool {
	if i == len(body) {
		return true
	}
	a := body[i]
	for _, tup := range in.facts[a.Rel] {
		var bound []string
		ok := true
		for j, t := range a.Terms {
			if !t.IsVar() {
				if t.Val != tup[j] {
					ok = false
					break
				}
				continue
			}
			if prev, has := sub[t.Var]; has {
				if prev != tup[j] {
					ok = false
					break
				}
				continue
			}
			sub[t.Var] = tup[j]
			bound = append(bound, t.Var)
		}
		if ok && matchAtoms(body, i+1, sub, in) {
			return true
		}
		for _, v := range bound {
			delete(sub, v)
		}
	}
	return false
}
