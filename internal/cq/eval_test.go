package cq

import (
	"testing"

	"repro/internal/instance"
	"repro/internal/logic"
	"repro/internal/schema"
	"repro/internal/symtab"
)

type world struct {
	cat *schema.Catalog
	u   *symtab.Universe
	in  *instance.Instance
}

func newWorld() *world {
	cat := schema.NewCatalog()
	cat.MustAdd("E", 2)
	cat.MustAdd("P", 1)
	return &world{cat: cat, u: symtab.NewUniverse(), in: instance.New(cat)}
}

func (w *world) rel(name string) *schema.Relation {
	r, _ := w.cat.ByName(name)
	return r
}

func (w *world) add(name string, vals ...string) {
	r := w.rel(name)
	args := make([]symtab.Value, len(vals))
	for i, v := range vals {
		args[i] = w.u.Const(v)
	}
	w.in.Add(r.ID, args)
}

func (w *world) tuple(vals ...string) []symtab.Value {
	args := make([]symtab.Value, len(vals))
	for i, v := range vals {
		args[i] = w.u.Const(v)
	}
	return args
}

func TestEvalSimpleJoin(t *testing.T) {
	w := newWorld()
	w.add("E", "a", "b")
	w.add("E", "b", "c")
	w.add("E", "c", "d")

	e := w.rel("E")
	// q(x,z) :- E(x,y), E(y,z)
	q := &logic.UCQ{Name: "q", Arity: 2, Clauses: []logic.CQ{{
		Head: []logic.Term{logic.V("x"), logic.V("z")},
		Body: []logic.Atom{
			logic.NewAtom(w.cat, e, logic.V("x"), logic.V("y")),
			logic.NewAtom(w.cat, e, logic.V("y"), logic.V("z")),
		},
	}}}
	ans := EvalUCQ(q, w.in)
	if ans.Len() != 2 {
		t.Fatalf("answers = %d, want 2", ans.Len())
	}
	if !ans.Contains(w.tuple("a", "c")) || !ans.Contains(w.tuple("b", "d")) {
		t.Fatal("missing expected answers")
	}
}

func TestEvalSelfJoinRepeatedVar(t *testing.T) {
	w := newWorld()
	w.add("E", "a", "a")
	w.add("E", "a", "b")
	e := w.rel("E")
	// q(x) :- E(x,x)
	q := &logic.UCQ{Name: "q", Arity: 1, Clauses: []logic.CQ{{
		Head: []logic.Term{logic.V("x")},
		Body: []logic.Atom{logic.NewAtom(w.cat, e, logic.V("x"), logic.V("x"))},
	}}}
	ans := EvalUCQ(q, w.in)
	if ans.Len() != 1 || !ans.Contains(w.tuple("a")) {
		t.Fatalf("self-join answers wrong: %d", ans.Len())
	}
}

func TestEvalWithConstant(t *testing.T) {
	w := newWorld()
	w.add("E", "a", "b")
	w.add("E", "c", "b")
	w.add("E", "c", "d")
	e := w.rel("E")
	b := w.u.Const("b")
	// q(x) :- E(x, b)
	q := &logic.UCQ{Name: "q", Arity: 1, Clauses: []logic.CQ{{
		Head: []logic.Term{logic.V("x")},
		Body: []logic.Atom{logic.NewAtom(w.cat, e, logic.V("x"), logic.C(b))},
	}}}
	ans := EvalUCQ(q, w.in)
	if ans.Len() != 2 {
		t.Fatalf("answers = %d, want 2", ans.Len())
	}
}

func TestEvalUnion(t *testing.T) {
	w := newWorld()
	w.add("E", "a", "b")
	w.add("P", "c")
	e, p := w.rel("E"), w.rel("P")
	q := &logic.UCQ{Name: "q", Arity: 1, Clauses: []logic.CQ{
		{Head: []logic.Term{logic.V("x")}, Body: []logic.Atom{logic.NewAtom(w.cat, e, logic.V("x"), logic.V("y"))}},
		{Head: []logic.Term{logic.V("x")}, Body: []logic.Atom{logic.NewAtom(w.cat, p, logic.V("x"))}},
	}}
	ans := EvalUCQ(q, w.in)
	if ans.Len() != 2 || !ans.Contains(w.tuple("a")) || !ans.Contains(w.tuple("c")) {
		t.Fatalf("union answers wrong: %d", ans.Len())
	}
}

func TestEvalBoolean(t *testing.T) {
	w := newWorld()
	w.add("E", "a", "b")
	e := w.rel("E")
	q := &logic.UCQ{Name: "q", Arity: 0, Clauses: []logic.CQ{{
		Head: nil,
		Body: []logic.Atom{logic.NewAtom(w.cat, e, logic.V("x"), logic.V("x"))},
	}}}
	if EvalBoolean(q, w.in) {
		t.Fatal("boolean query true on non-matching instance")
	}
	w.add("E", "c", "c")
	if !EvalBoolean(q, w.in) {
		t.Fatal("boolean query false on matching instance")
	}
}

func TestAnswersWithoutNulls(t *testing.T) {
	w := newWorld()
	e := w.rel("E")
	n := w.u.FreshNull()
	a := w.u.Const("a")
	w.in.Add(e.ID, []symtab.Value{a, n})
	w.in.Add(e.ID, []symtab.Value{a, a})
	q := &logic.UCQ{Name: "q", Arity: 2, Clauses: []logic.CQ{{
		Head: []logic.Term{logic.V("x"), logic.V("y")},
		Body: []logic.Atom{logic.NewAtom(w.cat, e, logic.V("x"), logic.V("y"))},
	}}}
	ans := EvalUCQ(q, w.in)
	if ans.Len() != 2 {
		t.Fatalf("q(I) = %d, want 2", ans.Len())
	}
	down := ans.WithoutNulls()
	if down.Len() != 1 || !down.Contains([]symtab.Value{a, a}) {
		t.Fatalf("q↓(I) wrong: %d", down.Len())
	}
}

func TestAnswerSetOps(t *testing.T) {
	s1, s2 := NewAnswerSet(), NewAnswerSet()
	w := newWorld()
	s1.Add(w.tuple("a"))
	s1.Add(w.tuple("b"))
	if !s1.Add(w.tuple("c")) || s1.Add(w.tuple("c")) {
		t.Fatal("Add dedup wrong")
	}
	s2.Add(w.tuple("b"))
	s2.Add(w.tuple("c"))
	got := s1.Clone().Intersect(s2)
	if got.Len() != 2 || got.Contains(w.tuple("a")) {
		t.Fatalf("Intersect wrong: %d", got.Len())
	}
	if s1.Len() != 3 {
		t.Fatal("Intersect mutated the clone source")
	}
	tuples := got.Tuples()
	if len(tuples) != 2 {
		t.Fatal("Tuples length wrong")
	}
}

func TestPlanCompileOrdersBoundFirst(t *testing.T) {
	w := newWorld()
	// E has many facts, P has one; the plan should start from P (smaller,
	// then E with a bound variable).
	for i := 0; i < 50; i++ {
		w.add("E", "x", string(rune('A'+i)))
	}
	w.add("P", "x")
	e, p := w.rel("E"), w.rel("P")
	body := []logic.Atom{
		logic.NewAtom(w.cat, e, logic.V("a"), logic.V("b")),
		logic.NewAtom(w.cat, p, logic.V("a")),
	}
	plan := Compile(body)
	if order := plan.JoinOrder(w.in); plan.base[order[0]].rel != p.ID {
		t.Fatal("plan did not start with the smaller relation")
	}
	n := 0
	plan.ForEach(w.in, func(env []symtab.Value) bool { n++; return true })
	if n != 50 {
		t.Fatalf("matches = %d, want 50", n)
	}
}

func TestForEachEarlyStop(t *testing.T) {
	w := newWorld()
	w.add("E", "a", "b")
	w.add("E", "b", "c")
	e := w.rel("E")
	plan := Compile([]logic.Atom{logic.NewAtom(w.cat, e, logic.V("x"), logic.V("y"))})
	n := 0
	completed := plan.ForEach(w.in, func([]symtab.Value) bool { n++; return false })
	if completed || n != 1 {
		t.Fatalf("early stop failed: completed=%v n=%d", completed, n)
	}
}
