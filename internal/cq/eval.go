// Package cq evaluates conjunctive queries and unions of conjunctive queries
// over instances. A body compiles once into a Plan (variable slots, constant
// templates); join order is chosen per evaluation by a cheap greedy re-cost
// (most-bound atom first, then smallest relation), so one Plan can be reused
// across chase rounds as relation sizes change. Matches are enumerated by
// indexed backtracking; ForEachDelta additionally restricts enumeration to
// matches using at least one tuple newer than a generation watermark, which
// is the core of semi-naive chase evaluation.
package cq

import (
	"sort"

	"repro/internal/instance"
	"repro/internal/logic"
	"repro/internal/schema"
	"repro/internal/symtab"
)

// atomExec is one precompiled body atom: a constant template plus the
// environment slot of each variable position (-1 for constants).
type atomExec struct {
	rel    schema.RelID
	consts []symtab.Value // constant at each position, None where a variable
	slots  []int          // env slot at each position, -1 where a constant
}

// Plan is a compiled conjunctive body. Plans are instance-independent and
// reusable: compile once per rule, evaluate every round. A Plan is
// read-only after Compile and safe for concurrent evaluation.
type Plan struct {
	base    []atomExec // atoms in original body order
	VarSlot map[string]int
	NumVars int
}

// Compile assigns environment slots to the variables of body and
// precompiles each atom's constant template. Join ordering is deferred to
// evaluation time (JoinOrder), so no instance is needed here.
func Compile(body []logic.Atom) *Plan {
	p := &Plan{VarSlot: make(map[string]int)}
	for _, a := range body {
		ae := atomExec{
			rel:    a.Rel,
			consts: make([]symtab.Value, len(a.Terms)),
			slots:  make([]int, len(a.Terms)),
		}
		for j, t := range a.Terms {
			if t.IsVar() {
				s, ok := p.VarSlot[t.Var]
				if !ok {
					s = p.NumVars
					p.VarSlot[t.Var] = s
					p.NumVars++
				}
				ae.slots[j] = s
				ae.consts[j] = symtab.None
			} else {
				ae.slots[j] = -1
				ae.consts[j] = t.Val
			}
		}
		p.base = append(p.base, ae)
	}
	return p
}

// NumAtoms returns the number of body atoms.
func (p *Plan) NumAtoms() int { return len(p.base) }

// Relations returns the distinct relations of the body atoms in first-use
// order. The chase uses this to build its rule→relation dependency index.
func (p *Plan) Relations() []schema.RelID {
	var out []schema.RelID
	for i := range p.base {
		r := p.base[i].rel
		seen := false
		for _, s := range out {
			if s == r {
				seen = true
				break
			}
		}
		if !seen {
			out = append(out, r)
		}
	}
	return out
}

// JoinOrder picks the evaluation order of the body atoms against in:
// greedily, the atom with the most bound positions (constants or variables
// bound by earlier atoms), ties broken by smaller relation cardinality, then
// by earlier position in the body. A nil instance orders with arity-based
// heuristics only. The returned slice indexes into the compiled body.
func (p *Plan) JoinOrder(in *instance.Instance) []int {
	n := len(p.base)
	order := make([]int, 0, n)
	used := make([]bool, n)
	bound := make([]bool, p.NumVars)
	for len(order) < n {
		best, bestScore, bestSize := -1, -1, 0
		for i := range p.base {
			if used[i] {
				continue
			}
			score := 0
			for _, s := range p.base[i].slots {
				if s < 0 || bound[s] {
					score++
				}
			}
			sz := 1 << 20
			if in != nil {
				sz = in.LenOf(p.base[i].rel)
			}
			if score > bestScore || (score == bestScore && sz < bestSize) {
				best, bestScore, bestSize = i, score, sz
			}
		}
		used[best] = true
		order = append(order, best)
		for _, s := range p.base[best].slots {
			if s >= 0 {
				bound[s] = true
			}
		}
	}
	return order
}

// evalState holds the per-evaluation scratch buffers so a match run does not
// allocate per candidate: one pattern and bound-slot buffer per plan
// position, the shared environment, and the generation rank vector.
//
// order is the canonical JoinOrder sequence; it defines the semi-naive
// window of each atom (before the seed: old, at it: delta, after: full) and
// the positions of the rank vector. evalOrder is the nesting order actually
// used to enumerate the join for the current seed — the seed atom first
// (its delta is the small side), the rest greedily by boundness — expressed
// as a permutation of order positions. Windows and ranks depend only on an
// atom's order position, never on its eval position, so reordering the
// nesting changes which matches are found fastest but not which are found.
type evalState struct {
	in         *instance.Instance
	oldGen     uint64
	order      []int
	evalOrder  []int
	env        []symtab.Value
	rank       []uint64
	patterns   [][]symtab.Value // indexed by order position
	boundSlots [][]int          // indexed by order position
	sizes      []int            // relation cardinality per order position
}

func (p *Plan) newEvalState(in *instance.Instance, oldGen uint64) *evalState {
	st := &evalState{
		in:         in,
		oldGen:     oldGen,
		order:      p.JoinOrder(in),
		evalOrder:  make([]int, len(p.base)),
		env:        make([]symtab.Value, p.NumVars),
		rank:       make([]uint64, len(p.base)),
		patterns:   make([][]symtab.Value, len(p.base)),
		boundSlots: make([][]int, len(p.base)),
		sizes:      make([]int, len(p.base)),
	}
	for i, bi := range st.order {
		st.patterns[i] = make([]symtab.Value, len(p.base[bi].consts))
		st.sizes[i] = in.LenOf(p.base[bi].rel)
	}
	return st
}

// planEvalOrder fills st.evalOrder for the given seed: the seed's order
// position first, then greedily the most-bound remaining atom (ties: smaller
// relation, then earlier order position). Seeding from order position 0
// reproduces the canonical JoinOrder sequence.
func (p *Plan) planEvalOrder(st *evalState, seed int) {
	n := len(st.order)
	bound := make([]bool, p.NumVars)
	st.evalOrder = st.evalOrder[:0]
	st.evalOrder = append(st.evalOrder, seed)
	for _, s := range p.base[st.order[seed]].slots {
		if s >= 0 {
			bound[s] = true
		}
	}
	taken := make([]bool, n)
	taken[seed] = true
	for len(st.evalOrder) < n {
		best, bestScore, bestSize := -1, -1, 0
		for pos := 0; pos < n; pos++ {
			if taken[pos] {
				continue
			}
			score := 0
			for _, s := range p.base[st.order[pos]].slots {
				if s < 0 || bound[s] {
					score++
				}
			}
			if score > bestScore || (score == bestScore && st.sizes[pos] < bestSize) {
				best, bestScore, bestSize = pos, score, st.sizes[pos]
			}
		}
		taken[best] = true
		st.evalOrder = append(st.evalOrder, best)
		for _, s := range p.base[st.order[best]].slots {
			if s >= 0 {
				bound[s] = true
			}
		}
	}
}

// ForEach enumerates every substitution satisfying the plan's body in in.
// env is indexed by VarSlot; the callback must not retain env. Returning
// false stops the enumeration early. ForEach reports whether enumeration ran
// to completion. Enumeration order is deterministic: lexicographic in tuple
// insertion order along the JoinOrder atom sequence.
func (p *Plan) ForEach(in *instance.Instance, fn func(env []symtab.Value) bool) bool {
	return p.ForEachDelta(in, 0, func(env []symtab.Value, _ []uint64, _ []int) bool {
		return fn(env)
	})
}

// ForEachDelta enumerates exactly the substitutions that use at least one
// body tuple inserted after generation oldGen, each exactly once: the
// standard semi-naive split, seeding the join in turn from each atom's delta
// while earlier atoms range over the pre-oldGen instance and later atoms
// over the full instance. oldGen 0 degenerates to a full enumeration
// (everything is delta for the first seed, and the "old" range of later
// seeds is empty), so the naive and semi-naive chase strategies share this
// single code path.
//
// rank holds the insertion generation of the tuple matched at each body
// atom, indexed by the atom's position in the compiled body. order is the
// JoinOrder sequence of the evaluation (shared across all callbacks of one
// ForEachDelta call; safe to retain for the duration of the call). Within
// one evaluation, sorting collected matches lexicographically by
// (rank[order[0]], rank[order[1]], ...) reproduces the enumeration order a
// full ForEach would have produced (tuple insertion order and generation
// order coincide in the add-only chase), which is how the semi-naive chase
// keeps its firing order — and hence its output — byte-identical to the
// naive fixpoint. Callbacks must not retain env or rank.
func (p *Plan) ForEachDelta(in *instance.Instance, oldGen uint64, fn func(env []symtab.Value, rank []uint64, order []int) bool) bool {
	if len(p.base) == 0 {
		if oldGen == 0 {
			return fn(nil, nil, nil)
		}
		return true
	}
	st := p.newEvalState(in, oldGen)
	for seed := range st.order {
		if oldGen > 0 && in.RelGen(p.base[st.order[seed]].rel) <= oldGen {
			continue // no delta tuples in this atom's relation
		}
		p.planEvalOrder(st, seed)
		if !p.matchDelta(st, 0, seed, fn) {
			return false
		}
		if oldGen == 0 {
			break // full enumeration: seed 0 already covered everything
		}
	}
	return true
}

func (p *Plan) matchDelta(st *evalState, depth, seed int, fn func([]symtab.Value, []uint64, []int) bool) bool {
	if depth == len(st.order) {
		return fn(st.env, st.rank, st.order)
	}
	pos := st.evalOrder[depth]
	ae := &p.base[st.order[pos]]
	pattern := st.patterns[pos]
	for j, s := range ae.slots {
		if s >= 0 {
			pattern[j] = st.env[s] // None when unbound
		} else {
			pattern[j] = ae.consts[j]
		}
	}
	lo, hi := uint64(0), ^uint64(0)
	switch {
	case pos < seed:
		hi = st.oldGen
	case pos == seed:
		lo = st.oldGen
	}
	return st.in.ForEachMatch(ae.rel, pattern, lo, hi, func(tup []symtab.Value, gen uint64) bool {
		bs := st.boundSlots[pos][:0]
		ok := true
		for j, s := range ae.slots {
			if s < 0 {
				continue
			}
			switch {
			case st.env[s] == symtab.None:
				st.env[s] = tup[j]
				bs = append(bs, s)
			case st.env[s] != tup[j]:
				ok = false
			}
			if !ok {
				break
			}
		}
		st.boundSlots[pos] = bs
		cont := true
		if ok {
			st.rank[st.order[pos]] = gen
			cont = p.matchDelta(st, depth+1, seed, fn)
		}
		for _, s := range bs {
			st.env[s] = symtab.None
		}
		return cont
	})
}

// AnswerSet is a deduplicated set of answer tuples.
type AnswerSet struct {
	tuples map[string][]symtab.Value
}

// NewAnswerSet returns an empty answer set.
func NewAnswerSet() *AnswerSet {
	return &AnswerSet{tuples: make(map[string][]symtab.Value)}
}

// Add inserts a tuple (copied) and reports whether it was new.
func (s *AnswerSet) Add(t []symtab.Value) bool {
	k := instance.EncodeTuple(t)
	if _, ok := s.tuples[k]; ok {
		return false
	}
	s.tuples[k] = append([]symtab.Value(nil), t...)
	return true
}

// Contains reports membership.
func (s *AnswerSet) Contains(t []symtab.Value) bool {
	_, ok := s.tuples[instance.EncodeTuple(t)]
	return ok
}

// Len returns the number of tuples.
func (s *AnswerSet) Len() int { return len(s.tuples) }

// Tuples returns the tuples in a deterministic (key-sorted) order.
func (s *AnswerSet) Tuples() [][]symtab.Value {
	keys := make([]string, 0, len(s.tuples))
	for k := range s.tuples {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	out := make([][]symtab.Value, len(keys))
	for i, k := range keys {
		out[i] = s.tuples[k]
	}
	return out
}

// Intersect removes tuples not present in other and returns s.
func (s *AnswerSet) Intersect(other *AnswerSet) *AnswerSet {
	for k := range s.tuples {
		if _, ok := other.tuples[k]; !ok {
			delete(s.tuples, k)
		}
	}
	return s
}

// WithoutNulls returns the subset of tuples containing only constants
// (the paper's q↓).
func (s *AnswerSet) WithoutNulls() *AnswerSet {
	out := NewAnswerSet()
	for _, t := range s.tuples {
		hasNull := false
		for _, v := range t {
			if v.IsNull() {
				hasNull = true
				break
			}
		}
		if !hasNull {
			out.Add(t)
		}
	}
	return out
}

// Clone returns a copy of the answer set.
func (s *AnswerSet) Clone() *AnswerSet {
	out := NewAnswerSet()
	for k, t := range s.tuples {
		out.tuples[k] = t
	}
	return out
}

// EvalUCQ evaluates q over in and returns all answers (q(I), including
// tuples with nulls; apply WithoutNulls for q↓).
func EvalUCQ(q *logic.UCQ, in *instance.Instance) *AnswerSet {
	out := NewAnswerSet()
	for ci := range q.Clauses {
		c := &q.Clauses[ci]
		plan := Compile(c.Body)
		tuple := make([]symtab.Value, len(c.Head))
		plan.ForEach(in, func(env []symtab.Value) bool {
			for i, t := range c.Head {
				if t.IsVar() {
					tuple[i] = env[plan.VarSlot[t.Var]]
				} else {
					tuple[i] = t.Val
				}
			}
			out.Add(tuple)
			return true
		})
	}
	return out
}

// EvalBoolean evaluates a boolean UCQ (arity 0) and reports whether it holds.
func EvalBoolean(q *logic.UCQ, in *instance.Instance) bool {
	for ci := range q.Clauses {
		c := &q.Clauses[ci]
		plan := Compile(c.Body)
		found := false
		plan.ForEach(in, func([]symtab.Value) bool {
			found = true
			return false
		})
		if found {
			return true
		}
	}
	return false
}
