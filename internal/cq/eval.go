// Package cq evaluates conjunctive queries and unions of conjunctive queries
// over instances. Evaluation compiles a body into a join plan (greedy
// bound-first atom ordering using relation cardinalities) and enumerates
// matches by indexed backtracking.
package cq

import (
	"sort"

	"repro/internal/instance"
	"repro/internal/logic"
	"repro/internal/symtab"
)

// Plan is a compiled conjunctive body.
type Plan struct {
	atoms   []logic.Atom
	VarSlot map[string]int // variable name -> environment slot
	NumVars int
}

// Compile orders the atoms of body for evaluation against in and assigns
// environment slots to variables. A nil instance compiles with arity-based
// heuristics only.
func Compile(body []logic.Atom, in *instance.Instance) *Plan {
	p := &Plan{VarSlot: make(map[string]int)}
	remaining := append([]logic.Atom(nil), body...)
	bound := make(map[string]bool)

	size := func(a logic.Atom) int {
		if in == nil {
			return 1 << 20
		}
		return in.LenOf(a.Rel)
	}
	// Greedy: repeatedly pick the atom with the most bound positions,
	// breaking ties by smaller relation cardinality.
	for len(remaining) > 0 {
		best, bestScore, bestSize := -1, -1, 0
		for i, a := range remaining {
			score := 0
			for _, t := range a.Terms {
				if !t.IsVar() || bound[t.Var] {
					score++
				}
			}
			sz := size(a)
			if score > bestScore || (score == bestScore && sz < bestSize) {
				best, bestScore, bestSize = i, score, sz
			}
		}
		a := remaining[best]
		remaining = append(remaining[:best], remaining[best+1:]...)
		p.atoms = append(p.atoms, a)
		for _, t := range a.Terms {
			if t.IsVar() {
				bound[t.Var] = true
				if _, ok := p.VarSlot[t.Var]; !ok {
					p.VarSlot[t.Var] = p.NumVars
					p.NumVars++
				}
			}
		}
	}
	return p
}

// ForEach enumerates every substitution satisfying the plan's body in in.
// env is indexed by VarSlot; the callback must not retain env. Returning
// false stops the enumeration early. ForEach reports whether enumeration ran
// to completion.
func (p *Plan) ForEach(in *instance.Instance, fn func(env []symtab.Value) bool) bool {
	env := make([]symtab.Value, p.NumVars)
	return p.match(in, 0, env, fn)
}

func (p *Plan) match(in *instance.Instance, i int, env []symtab.Value, fn func([]symtab.Value) bool) bool {
	if i == len(p.atoms) {
		return fn(env)
	}
	a := p.atoms[i]
	pattern := make([]symtab.Value, len(a.Terms))
	for j, t := range a.Terms {
		if t.IsVar() {
			pattern[j] = env[p.VarSlot[t.Var]] // None when unbound
		} else {
			pattern[j] = t.Val
		}
	}
	for _, tup := range in.Match(a.Rel, pattern) {
		var boundSlots []int
		ok := true
		for j, t := range a.Terms {
			if !t.IsVar() {
				continue
			}
			s := p.VarSlot[t.Var]
			switch {
			case env[s] == symtab.None:
				env[s] = tup[j]
				boundSlots = append(boundSlots, s)
			case env[s] != tup[j]:
				ok = false
			}
			if !ok {
				break
			}
		}
		if ok && !p.match(in, i+1, env, fn) {
			return false
		}
		for _, s := range boundSlots {
			env[s] = symtab.None
		}
	}
	return true
}

// AnswerSet is a deduplicated set of answer tuples.
type AnswerSet struct {
	tuples map[string][]symtab.Value
}

// NewAnswerSet returns an empty answer set.
func NewAnswerSet() *AnswerSet {
	return &AnswerSet{tuples: make(map[string][]symtab.Value)}
}

// Add inserts a tuple (copied) and reports whether it was new.
func (s *AnswerSet) Add(t []symtab.Value) bool {
	k := instance.EncodeTuple(t)
	if _, ok := s.tuples[k]; ok {
		return false
	}
	s.tuples[k] = append([]symtab.Value(nil), t...)
	return true
}

// Contains reports membership.
func (s *AnswerSet) Contains(t []symtab.Value) bool {
	_, ok := s.tuples[instance.EncodeTuple(t)]
	return ok
}

// Len returns the number of tuples.
func (s *AnswerSet) Len() int { return len(s.tuples) }

// Tuples returns the tuples in a deterministic (key-sorted) order.
func (s *AnswerSet) Tuples() [][]symtab.Value {
	keys := make([]string, 0, len(s.tuples))
	for k := range s.tuples {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	out := make([][]symtab.Value, len(keys))
	for i, k := range keys {
		out[i] = s.tuples[k]
	}
	return out
}

// Intersect removes tuples not present in other and returns s.
func (s *AnswerSet) Intersect(other *AnswerSet) *AnswerSet {
	for k := range s.tuples {
		if _, ok := other.tuples[k]; !ok {
			delete(s.tuples, k)
		}
	}
	return s
}

// WithoutNulls returns the subset of tuples containing only constants
// (the paper's q↓).
func (s *AnswerSet) WithoutNulls() *AnswerSet {
	out := NewAnswerSet()
	for _, t := range s.tuples {
		hasNull := false
		for _, v := range t {
			if v.IsNull() {
				hasNull = true
				break
			}
		}
		if !hasNull {
			out.Add(t)
		}
	}
	return out
}

// Clone returns a copy of the answer set.
func (s *AnswerSet) Clone() *AnswerSet {
	out := NewAnswerSet()
	for k, t := range s.tuples {
		out.tuples[k] = t
	}
	return out
}

// EvalUCQ evaluates q over in and returns all answers (q(I), including
// tuples with nulls; apply WithoutNulls for q↓).
func EvalUCQ(q *logic.UCQ, in *instance.Instance) *AnswerSet {
	out := NewAnswerSet()
	for ci := range q.Clauses {
		c := &q.Clauses[ci]
		plan := Compile(c.Body, in)
		tuple := make([]symtab.Value, len(c.Head))
		plan.ForEach(in, func(env []symtab.Value) bool {
			for i, t := range c.Head {
				if t.IsVar() {
					tuple[i] = env[plan.VarSlot[t.Var]]
				} else {
					tuple[i] = t.Val
				}
			}
			out.Add(tuple)
			return true
		})
	}
	return out
}

// EvalBoolean evaluates a boolean UCQ (arity 0) and reports whether it holds.
func EvalBoolean(q *logic.UCQ, in *instance.Instance) bool {
	for ci := range q.Clauses {
		c := &q.Clauses[ci]
		plan := Compile(c.Body, in)
		found := false
		plan.ForEach(in, func([]symtab.Value) bool {
			found = true
			return false
		})
		if found {
			return true
		}
	}
	return false
}
