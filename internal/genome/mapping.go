// Package genome implements the paper's benchmark scenario (Section 5): a
// loose simulation of the UCSC Genome Browser data import process. The
// source schemas mimic the UCSC gene-model tables plus RefSeq, EntrezGene
// and UniProt; the hand-written mapping populates the Genome Browser target
// schema (knownGene, kgXref, refLink, knownToLocusLink, knownIsoforms) and
// applies key constraints per industry practice.
//
// Real dumps of the external databases are not redistributable here, so a
// deterministic generator synthesizes instances with the same join topology
// and the paper's two inconsistency channels (Figure 2):
//
//	(A) UCSC and RefSeq disagree on a transcript's exon count;
//	(B) RefSeq and EntrezGene list different gene symbols.
//
// Cluster ids in knownIsoforms are existential (labeled nulls) and the
// clustering egds equate nulls — the weakly-acyclic differentiator the
// paper highlights.
package genome

import (
	"fmt"

	"repro/internal/logic"
	"repro/internal/parser"
)

// MappingText is the benchmark schema mapping in the textual format of
// internal/parser.
const MappingText = `
# ---------- Source schema: UCSC gene model (given, not computed) ----------
source ComputedAlignments(kgID, chrom, strand, txStart, txEnd, cdsStart, cdsEnd, exonCount, exonStarts, exonEnds, alignID).
source ComputedCrossref(kgID, refseqAcc, protAcc).

# ---------- Source schema: RefSeq flat files (five relations) ----------
source RefSeqTranscript(acc, exonCount, product).
source RefSeqSource(acc, organism, tissue).
source RefSeqReference(acc, pmid, firstAuthor).
source RefSeqGene(acc, geneSymbol, entrezID).
source RefSeqProtein(acc, protAcc, protName).

# ---------- Source schema: EntrezGene and UniProt ----------
source EntrezGene(entrezID, symbol, description).
source UniProt(protAcc, displayID, organism).

# ---------- Target schema: UCSC Genome Browser ----------
target knownGene(name, chrom, strand, txStart, txEnd, cdsStart, cdsEnd, exonCount, exonStarts, exonEnds, protAcc, alignID).
target kgXref(kgID, mRNA, spID, spDisplayID, geneSymbol, refseq, protAcc, description, rfamAcc, tRnaName).
target refLink(name, product, mrnaAcc, protAcc, geneName, prodName, locusLinkId, omimId).
target knownToLocusLink(kgID, locusLinkId).
target knownIsoforms(clusterId, transcript).
target kgSpAlias(kgID, alias).

# ---------- knownGene: exon counts from UCSC and from RefSeq (Figure 2A) ----------
tgd kg_ucsc:
  ComputedAlignments(kg, ch, sd, txs, txe, cs, ce, exc, exs, exe, aid) &
  ComputedCrossref(kg, rs, pa)
  -> knownGene(kg, ch, sd, txs, txe, cs, ce, exc, exs, exe, pa, aid).

tgd kg_refseq:
  ComputedAlignments(kg, ch, sd, txs, txe, cs, ce, exc0, exs, exe, aid) &
  ComputedCrossref(kg, rs, pa) &
  RefSeqTranscript(rs, exc, prod)
  -> knownGene(kg, ch, sd, txs, txe, cs, ce, exc, exs, exe, pa, aid).

# ---------- kgXref: gene symbols from RefSeq and from EntrezGene (Figure 2B) ----------
tgd xref_refseq:
  ComputedCrossref(kg, rs, pa) &
  RefSeqGene(rs, sym, ez) &
  RefSeqTranscript(rs, exc, prod)
  -> kgXref(kg, rs, pa, spd, sym, rs, pa, prod, 'NA', 'NA').

tgd xref_entrez:
  ComputedCrossref(kg, rs, pa) &
  RefSeqGene(rs, sym0, ez) &
  EntrezGene(ez, sym, desc) &
  RefSeqTranscript(rs, exc, prod)
  -> kgXref(kg, rs, pa, spd, sym, rs, pa, prod, 'NA', 'NA').

tgd xref_uniprot:
  ComputedCrossref(kg, rs, pa) &
  RefSeqGene(rs, sym, ez) &
  RefSeqTranscript(rs, exc, prod) &
  UniProt(pa, spdisp, org)
  -> kgXref(kg, rs, pa, spdisp, sym, rs, pa, prod, 'NA', 'NA').

# ---------- refLink from the RefSeq relations ----------
tgd reflink:
  RefSeqTranscript(rs, exc, prod) &
  RefSeqGene(rs, sym, ez) &
  RefSeqProtein(rs, pa, pname)
  -> refLink(sym, prod, rs, pa, sym, pname, ez, om).

# ---------- knownToLocusLink ----------
tgd ktll:
  ComputedCrossref(kg, rs, pa) &
  RefSeqGene(rs, sym, ez)
  -> knownToLocusLink(kg, ez).

# ---------- kgSpAlias: a target tgd deriving protein aliases from kgXref ----------
tgd alias_sp:
  kgXref(kg, m, s, spd, sym, rs, pa, de, rf, tn)
  -> kgSpAlias(kg, s).

tgd alias_display:
  kgXref(kg, m, s, spd, sym, rs, pa, de, rf, tn)
  -> kgSpAlias(kg, spd).

# ---------- knownIsoforms: every transcript gets an existential cluster ----------
tgd iso:
  ComputedCrossref(kg, rs, pa)
  -> knownIsoforms(c, kg).

# ---------- Key constraints (Figure 2A/2B conflict channels) ----------
egd kg_key_exons:
  knownGene(kg, ch, sd, txs, txe, cs, ce, e1, exs, exe, pa, aid) &
  knownGene(kg, ch2, sd2, txs2, txe2, cs2, ce2, e2, exs2, exe2, pa2, aid2)
  -> e1 = e2.

egd kg_key_prot:
  knownGene(kg, ch, sd, txs, txe, cs, ce, e1, exs, exe, p1, aid) &
  knownGene(kg, ch2, sd2, txs2, txe2, cs2, ce2, e2, exs2, exe2, p2, aid2)
  -> p1 = p2.

egd xref_key_symbol:
  kgXref(kg, m1, s1, d1, sym1, r1, p1, de1, rf1, tn1) &
  kgXref(kg, m2, s2, d2, sym2, r2, p2, de2, rf2, tn2)
  -> sym1 = sym2.

egd xref_key_spdisplay:
  kgXref(kg, m1, s1, d1, sym1, r1, p1, de1, rf1, tn1) &
  kgXref(kg, m2, s2, d2, sym2, r2, p2, de2, rf2, tn2)
  -> d1 = d2.

egd reflink_key_product:
  refLink(n1, pr1, rs, pa1, g1, pn1, ez1, om1) &
  refLink(n2, pr2, rs, pa2, g2, pn2, ez2, om2)
  -> pr1 = pr2.

egd ktll_key:
  knownToLocusLink(kg, e1) & knownToLocusLink(kg, e2) -> e1 = e2.

# ---------- Clustering (Figure 2C): equalities between nulls ----------
egd iso_key:
  knownIsoforms(c1, kg) & knownIsoforms(c2, kg) -> c1 = c2.

egd iso_by_entrez:
  knownIsoforms(c1, kg1) & knownIsoforms(c2, kg2) &
  knownToLocusLink(kg1, ez) & knownToLocusLink(kg2, ez)
  -> c1 = c2.

egd iso_by_symbol:
  knownIsoforms(c1, kg1) & knownIsoforms(c2, kg2) &
  kgXref(kg1, m1, s1, d1, sym, r1, p1, de1, rf1, tn1) &
  kgXref(kg2, m2, s2, d2, sym, r2, p2, de2, rf2, tn2)
  -> c1 = c2.
`

// QueriesText is the Table 3 query suite, verbatim from the paper.
const QueriesText = `
ep1() :- refLink(symbol, _, acc, protacc, _, _, _, _), kgXref(ucscid, _, spid, _, symbol, _, _, _, _, _).
ep2(protacc) :- refLink(symbol, _, acc, protacc, _, _, _, _), kgXref(ucscid, _, spid, _, symbol, _, _, _, _, _).
ep3(protacc, spid) :- refLink(symbol, _, acc, protacc, _, _, _, _), kgXref(ucscid, _, spid, _, symbol, _, _, _, _, _).
ep15(symbol) :- kgXref(ucscid, _, _, _, symbol, refseq, _, _, _, _), refLink(_, product, refseq, _, _, _, entrez, _).
ep16(symbol, entrez) :- kgXref(ucscid, _, _, _, symbol, refseq, _, _, _, _), refLink(_, product, refseq, _, _, _, entrez, _).
xr1() :- knownGene(kgid, ch, sd, txs, txe, cs, ce, exc, exs, exe, pac, alignid).
xr2(kgid) :- knownGene(kgid, ch, sd, txs, txe, cs, ce, exc, exs, exe, pac, alignid).
xr3(kgid, ch, sd, txs, txe, cs, ce, exc, exs, exe, pac, ai) :- knownGene(kgid, ch, sd, txs, txe, cs, ce, exc, exs, exe, pac, ai).
xr4() :- knownIsoforms(cluster, transcript1), knownIsoforms(cluster, transcript2).
xr5(transcript1) :- knownIsoforms(cluster, transcript1), knownIsoforms(cluster, transcript2).
xr6(transcript1, transcript2) :- knownIsoforms(cluster, transcript1), knownIsoforms(cluster, transcript2).
`

// NewWorld parses the benchmark mapping.
func NewWorld() (*parser.World, error) {
	w, err := parser.ParseMapping(MappingText)
	if err != nil {
		return nil, fmt.Errorf("genome: parsing mapping: %w", err)
	}
	if !w.M.IsWeaklyAcyclic() {
		return nil, fmt.Errorf("genome: mapping is not weakly acyclic")
	}
	return w, nil
}

// Queries parses the Table 3 query suite against the world.
func Queries(w *parser.World) ([]*logic.UCQ, error) {
	return parser.ParseQueries(QueriesText, w)
}
