package genome

import (
	"testing"

	"repro/internal/cq"
	"repro/internal/symtab"
	"repro/internal/xr"
)

func TestMappingParses(t *testing.T) {
	w, err := NewWorld()
	if err != nil {
		t.Fatal(err)
	}
	stats := w.M.Stats()
	if stats.STTgds != 8 || stats.TargetTgds != 2 || stats.TargetEgds != 9 {
		t.Fatalf("mapping stats = %+v", stats)
	}
	if w.M.IsGAV() {
		t.Fatal("benchmark mapping should not be GAV (existential cluster ids)")
	}
	if !w.M.IsWeaklyAcyclic() {
		t.Fatal("mapping not weakly acyclic")
	}
}

func TestQueriesParse(t *testing.T) {
	w, err := NewWorld()
	if err != nil {
		t.Fatal(err)
	}
	qs, err := Queries(w)
	if err != nil {
		t.Fatal(err)
	}
	if len(qs) != 11 {
		t.Fatalf("queries = %d, want 11", len(qs))
	}
	names := map[string]int{}
	for _, q := range qs {
		names[q.Name] = q.Arity
	}
	for name, arity := range map[string]int{
		"ep1": 0, "ep2": 1, "ep3": 2, "ep15": 1, "ep16": 2,
		"xr1": 0, "xr2": 1, "xr3": 12, "xr4": 0, "xr5": 1, "xr6": 2,
	} {
		if got, ok := names[name]; !ok || got != arity {
			t.Fatalf("query %s: arity %d ok=%v, want %d", name, got, ok, arity)
		}
	}
}

func TestGenerateDeterministic(t *testing.T) {
	w, err := NewWorld()
	if err != nil {
		t.Fatal(err)
	}
	p := Profile{Name: "tiny", Transcripts: 20, SuspectRate: 0.2, Seed: 42}
	a := Generate(w, p)
	w2, _ := NewWorld()
	b := Generate(w2, p)
	if a.Len() != b.Len() {
		t.Fatalf("nondeterministic sizes: %d vs %d", a.Len(), b.Len())
	}
	// ~10 source tuples per transcript (9 fixed + 0.5 padding + genes/3).
	if a.Len() < 20*8 || a.Len() > 20*12 {
		t.Fatalf("unexpected size %d for 20 transcripts", a.Len())
	}
}

func TestConsistentProfileHasNoViolations(t *testing.T) {
	w, err := NewWorld()
	if err != nil {
		t.Fatal(err)
	}
	src := Generate(w, Profile{Name: "clean", Transcripts: 30, SuspectRate: 0, Seed: 1})
	ex, err := xr.NewExchange(w.M, src)
	if err != nil {
		t.Fatal(err)
	}
	if !ex.Consistent() {
		t.Fatalf("clean instance has %d violations", ex.Stats.Violations)
	}
}

func TestSuspectRateDrivesViolations(t *testing.T) {
	w, err := NewWorld()
	if err != nil {
		t.Fatal(err)
	}
	src := Generate(w, Profile{Name: "dirty", Transcripts: 40, SuspectRate: 0.25, Seed: 2})
	ex, err := xr.NewExchange(w.M, src)
	if err != nil {
		t.Fatal(err)
	}
	// 10 suspect transcripts: 5 exon conflicts + 5 symbol conflicts.
	if ex.Stats.Violations == 0 {
		t.Fatal("no violations on dirty instance")
	}
	if ex.Stats.Clusters < 5 || ex.Stats.Clusters > 12 {
		t.Fatalf("clusters = %d, expected roughly one per suspect transcript", ex.Stats.Clusters)
	}
	if ex.SuspectSourceFacts() == 0 {
		t.Fatal("no suspect source facts")
	}
}

func TestSegmentaryAnswersGenomeSuite(t *testing.T) {
	w, err := NewWorld()
	if err != nil {
		t.Fatal(err)
	}
	src := Generate(w, Profile{Name: "t", Transcripts: 24, SuspectRate: 0.25, Seed: 3})
	qs, err := Queries(w)
	if err != nil {
		t.Fatal(err)
	}
	ex, err := xr.NewExchange(w.M, src)
	if err != nil {
		t.Fatal(err)
	}
	byName := map[string]*cq.AnswerSet{}
	for _, q := range qs {
		res, err := ex.Answer(q)
		if err != nil {
			t.Fatalf("query %s: %v", q.Name, err)
		}
		byName[q.Name] = res.Answers
	}
	// xr1 (boolean: any knownGene row certain?) must hold: clean transcripts
	// have undisputed rows.
	if byName["xr1"].Len() != 1 {
		t.Fatal("xr1 should be certainly true")
	}
	// xr2: every clean transcript is a certain answer; suspect exon-conflict
	// transcripts have no certain knownGene row (the exon count is disputed),
	// so the count must be strictly between 0 and 24.
	n := byName["xr2"].Len()
	if n < 18 || n >= 24 {
		t.Fatalf("xr2 answers = %d, want in [18, 24)", n)
	}
	// xr3 is the projection-free version: its count cannot exceed xr2's rows
	// per transcript... it must be at least the number of xr2 transcripts.
	if byName["xr3"].Len() < n {
		t.Fatalf("xr3 = %d < xr2 = %d", byName["xr3"].Len(), n)
	}
	// xr5 ⊆ transcripts, nonempty; xr6 contains the diagonal of xr5.
	if byName["xr5"].Len() == 0 || byName["xr6"].Len() < byName["xr5"].Len() {
		t.Fatalf("xr5 = %d, xr6 = %d", byName["xr5"].Len(), byName["xr6"].Len())
	}
	// ep2/ep3: protein accessions via symbol join.
	if byName["ep2"].Len() == 0 || byName["ep3"].Len() < byName["ep2"].Len() {
		t.Fatalf("ep2 = %d, ep3 = %d", byName["ep2"].Len(), byName["ep3"].Len())
	}
}

func TestMonolithicMatchesSegmentaryOnGenome(t *testing.T) {
	w, err := NewWorld()
	if err != nil {
		t.Fatal(err)
	}
	src := Generate(w, Profile{Name: "t", Transcripts: 12, SuspectRate: 0.25, Seed: 4})
	qs, err := Queries(w)
	if err != nil {
		t.Fatal(err)
	}
	// Compare on a representative subset (monolithic re-chases per query).
	var subset = qs[:0]
	for _, q := range qs {
		switch q.Name {
		case "ep2", "xr2", "xr6":
			subset = append(subset, q)
		}
	}
	mono, err := xr.Monolithic(w.M, src, subset, xr.MonolithicOptions{})
	if err != nil {
		t.Fatal(err)
	}
	ex, err := xr.NewExchange(w.M, src)
	if err != nil {
		t.Fatal(err)
	}
	for i, q := range subset {
		seg, err := ex.Answer(q)
		if err != nil {
			t.Fatalf("query %s: %v", q.Name, err)
		}
		if seg.Answers.Len() != mono[i].Answers.Len() {
			t.Fatalf("query %s: segmentary %d vs monolithic %d",
				q.Name, seg.Answers.Len(), mono[i].Answers.Len())
		}
		for _, tup := range mono[i].Answers.Tuples() {
			if !seg.Answers.Contains(tup) {
				t.Fatalf("query %s: tuple mismatch", q.Name)
			}
		}
	}
}

func TestClusteringMergesIsoforms(t *testing.T) {
	// Two transcripts of the same gene must land in the same cluster:
	// xr6 contains the off-diagonal pair.
	w, err := NewWorld()
	if err != nil {
		t.Fatal(err)
	}
	// 4 transcripts over 2 genes (t%nGenes with nGenes=2): t0,t2 -> gene 0.
	src := Generate(w, Profile{Name: "t", Transcripts: 4, SuspectRate: 0, Seed: 5})
	qs, err := Queries(w)
	if err != nil {
		t.Fatal(err)
	}
	ex, err := xr.NewExchange(w.M, src)
	if err != nil {
		t.Fatal(err)
	}
	var xr6Answers *cq.AnswerSet
	for _, q := range qs {
		if q.Name == "xr6" {
			res, err := ex.Answer(q)
			if err != nil {
				t.Fatal(err)
			}
			xr6Answers = res.Answers
		}
	}
	uc0 := w.U.Const("uc000000.1")
	uc1 := w.U.Const("uc000001.1")
	uc2 := w.U.Const("uc000002.1")
	if !xr6Answers.Contains([]symtab.Value{uc0, uc2}) {
		t.Fatal("same-gene transcripts not clustered")
	}
	if xr6Answers.Contains([]symtab.Value{uc0, uc1}) {
		t.Fatal("different-gene transcripts clustered")
	}
}

func TestProfiles(t *testing.T) {
	ps := Profiles(1)
	if len(ps) != 7 {
		t.Fatalf("profiles = %d", len(ps))
	}
	byName := map[string]Profile{}
	for _, p := range ps {
		byName[p.Name] = p
	}
	if byName["F3"].Transcripts <= byName["L3"].Transcripts ||
		byName["L3"].Transcripts <= byName["M3"].Transcripts ||
		byName["M3"].Transcripts <= byName["S3"].Transcripts {
		t.Fatal("size ordering wrong")
	}
	if byName["L20"].SuspectRate <= byName["L9"].SuspectRate {
		t.Fatal("suspect ordering wrong")
	}
	// Scaling: 0.1 gives a tenth of the transcripts (floored, min 10).
	small := Profiles(0.1)
	for i, p := range small {
		if p.Transcripts > ps[i].Transcripts/10+1 && p.Transcripts != 10 {
			t.Fatalf("profile %s not scaled: %d vs %d", p.Name, p.Transcripts, ps[i].Transcripts)
		}
	}
	if _, ok := ProfileByName("L3", 1); !ok {
		t.Fatal("ProfileByName miss")
	}
	if _, ok := ProfileByName("nope", 1); ok {
		t.Fatal("ProfileByName invented a profile")
	}
}
