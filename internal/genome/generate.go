package genome

import (
	"fmt"
	"math/rand"

	"repro/internal/instance"
	"repro/internal/parser"
	"repro/internal/schema"
	"repro/internal/symtab"
)

// Profile describes one benchmark instance: a number of transcripts and the
// fraction of them involved in target constraint violations ("suspect
// transcripts", Section 5.1).
type Profile struct {
	Name        string
	Transcripts int
	SuspectRate float64 // fraction of transcripts made suspect
	Seed        int64
}

// Profiles returns the paper's instance grid (Table 2) scaled by the given
// factor. scale = 1 approximates the paper's source-tuple counts
// (S≈3.5k, M≈36k, L≈322k, F≈1.85M source tuples at roughly 10 source
// tuples per transcript); the default harness uses scale = 0.1.
func Profiles(scale float64) []Profile {
	n := func(base int) int {
		v := int(float64(base) * scale)
		if v < 10 {
			v = 10
		}
		return v
	}
	return []Profile{
		{Name: "L0", Transcripts: n(32000), SuspectRate: 0.00, Seed: 7001},
		{Name: "L3", Transcripts: n(32000), SuspectRate: 0.03, Seed: 7002},
		{Name: "L9", Transcripts: n(32000), SuspectRate: 0.09, Seed: 7003},
		{Name: "L20", Transcripts: n(32000), SuspectRate: 0.20, Seed: 7004},
		{Name: "S3", Transcripts: n(350), SuspectRate: 0.03, Seed: 7005},
		{Name: "M3", Transcripts: n(3600), SuspectRate: 0.03, Seed: 7006},
		{Name: "F3", Transcripts: n(185000), SuspectRate: 0.029, Seed: 7007},
	}
}

// ProfileByName returns the named profile from Profiles(scale).
func ProfileByName(name string, scale float64) (Profile, bool) {
	for _, p := range Profiles(scale) {
		if p.Name == name {
			return p, true
		}
	}
	return Profile{}, false
}

// Generate synthesizes the source instance for a profile. Generation is
// deterministic in the profile's seed.
//
// Per transcript t the generator emits:
//
//	ComputedAlignments, ComputedCrossref        (UCSC gene model)
//	RefSeqTranscript, RefSeqSource, RefSeqReference, RefSeqGene, RefSeqProtein
//	UniProt                                     (matching protein row)
//
// plus one EntrezGene row per gene (≈ one per 3 transcripts) and one
// unmatched UniProt padding row per 2 transcripts (UniProt dwarfs the other
// sources in the real data). Suspect transcripts get, alternating, an exon
// count disagreement (Figure 2A) or a gene symbol disagreement (Figure 2B).
func Generate(w *parser.World, p Profile) *instance.Instance {
	rng := rand.New(rand.NewSource(p.Seed))
	in := instance.New(w.Cat)
	u := w.U

	rel := func(name string) *relHandle {
		r, ok := w.Cat.ByName(name)
		if !ok {
			panic("genome: unknown relation " + name)
		}
		return &relHandle{in: in, u: u, id: r.ID}
	}
	ca := rel("ComputedAlignments")
	cc := rel("ComputedCrossref")
	rst := rel("RefSeqTranscript")
	rss := rel("RefSeqSource")
	rsr := rel("RefSeqReference")
	rsg := rel("RefSeqGene")
	rsp := rel("RefSeqProtein")
	ez := rel("EntrezGene")
	up := rel("UniProt")

	chroms := []string{"chr1", "chr2", "chr3", "chr7", "chr11", "chr17", "chrX"}
	nGenes := p.Transcripts/3 + 1
	nSuspect := int(float64(p.Transcripts)*p.SuspectRate + 0.5)

	// Emit genes.
	for g := 0; g < nGenes; g++ {
		ez.add(entrezID(g), symbol(g), fmt.Sprintf("protein coding gene %d", g))
	}

	for t := 0; t < p.Transcripts; t++ {
		kg := fmt.Sprintf("uc%06d.1", t)
		rs := fmt.Sprintf("NM_%06d", t)
		pa := fmt.Sprintf("P%05d", t)
		gene := t % nGenes
		exons := 2 + rng.Intn(30)
		txStart := 1000 + rng.Intn(1_000_000)
		txEnd := txStart + 500 + rng.Intn(100_000)
		chrom := chroms[gene%len(chroms)]
		strand := "+"
		if rng.Intn(2) == 0 {
			strand = "-"
		}

		suspect := t < nSuspect
		exonConflict := suspect && t%2 == 0
		symbolConflict := suspect && t%2 == 1

		refseqExons := exons
		if exonConflict {
			refseqExons = exons + 1 + rng.Intn(3)
		}
		refseqSymbol := symbol(gene)
		if symbolConflict {
			refseqSymbol = symbol(gene) + "-ALT"
		}

		ca.add(kg, chrom, strand, itostr(txStart), itostr(txEnd),
			itostr(txStart+10), itostr(txEnd-10), itostr(exons),
			exonList(rng, txStart, exons), exonList(rng, txStart+50, exons),
			fmt.Sprintf("align%06d", t))
		cc.add(kg, rs, pa)
		rst.add(rs, itostr(refseqExons), fmt.Sprintf("%s isoform %d", symbol(gene), t%5))
		rss.add(rs, "Homo sapiens", tissue(rng))
		rsr.add(rs, fmt.Sprintf("PMID%07d", 1000000+t), fmt.Sprintf("Author%d", gene))
		rsg.add(rs, refseqSymbol, entrezID(gene))
		rsp.add(rs, pa, fmt.Sprintf("%s protein", symbol(gene)))
		up.add(pa, symbol(gene)+"_HUMAN", "Homo sapiens")
		if t%2 == 0 {
			// Unmatched padding row (the real UniProt is mostly unrelated
			// organisms and isoforms).
			up.add(fmt.Sprintf("Q%05d", t), fmt.Sprintf("PAD%d_MOUSE", t), "Mus musculus")
		}
	}
	return in
}

type relHandle struct {
	in *instance.Instance
	u  *symtab.Universe
	id schema.RelID
}

func (h *relHandle) add(vals ...string) {
	args := make([]symtab.Value, len(vals))
	for i, v := range vals {
		args[i] = h.u.Const(v)
	}
	h.in.Add(h.id, args)
}

func entrezID(g int) string { return fmt.Sprintf("%d", 10000+g) }
func symbol(g int) string   { return fmt.Sprintf("SYM%d", g) }
func itostr(n int) string   { return fmt.Sprintf("%d", n) }

func exonList(rng *rand.Rand, start, n int) string {
	// A compact stand-in for the comma-separated exon coordinate blobs.
	return fmt.Sprintf("%d:%d", start, n)
}

func tissue(rng *rand.Rand) string {
	ts := []string{"brain", "liver", "testis", "kidney", "blood"}
	return ts[rng.Intn(len(ts))]
}
