#!/usr/bin/env bash
# serve_smoke.sh — end-to-end smoke test of the xrserved daemon.
#
# Boots the daemon on an ephemeral port, loads TWO tricolor scenarios
# concurrently (K4: not 3-colorable, the marker fact is XR-certain;
# K3: 3-colorable, it is not), queries both end-to-end, and asserts the
# exact answer bodies. Also checks the graceful-degradation contract: a
# budget-capped request stays HTTP 200 with degraded signatures and
# ?-marked unknowns, and saturating admission yields 429. Finally it
# drives the request-observability chain: one correlated request whose
# X-Request-Id shows up in the response header and body, the JSON access
# log, /v1/slowlog, and the fetched span tree. Run via `make serve-smoke`.
#
# The script then exercises crash-safe persistence: the daemon runs with
# -data-dir, so a SIGTERM + reboot over the same directory must bring both
# tenants back with zero re-POSTs and identical answers; corrupting one
# snapshot in place must still boot, with exactly one tenant quarantined
# (reported in /v1/store, /healthz, and an ERROR log line) and the name
# free for a fresh load.
#
# Set SMOKE_LOG to keep the daemon's JSON log at a stable path (CI
# uploads it as a workflow artifact); it defaults to the temp workdir.
# SMOKE_DATA_DIR likewise pins the persistence directory (uploaded on
# failure); it defaults to the temp workdir too. SMOKE_PROFILE pins where
# the final cumulative workload profile JSON is written (also a CI
# artifact).
set -euo pipefail

cd "$(dirname "$0")/.."

workdir=$(mktemp -d)
server_pid=""
cleanup() {
  if [[ -n "$server_pid" ]] && kill -0 "$server_pid" 2>/dev/null; then
    kill -TERM "$server_pid" 2>/dev/null || true
    wait "$server_pid" 2>/dev/null || true
  fi
  rm -rf "$workdir"
}
trap cleanup EXIT

fail() {
  echo "serve-smoke: FAIL: $*" >&2
  echo "--- server log ---" >&2
  cat "$server_log" >&2 || true
  exit 1
}

echo "serve-smoke: building xrserved"
go build -o "$workdir/xrserved" ./cmd/xrserved

server_log="${SMOKE_LOG:-$workdir/server.log}"
data_dir="${SMOKE_DATA_DIR:-$workdir/data}"
profile_out="${SMOKE_PROFILE:-$workdir/profile.json}"
: >"$server_log"

# start_daemon boots xrserved over the shared data dir and appends to the
# shared log; stop_daemon SIGTERMs and asserts a clean drain. Every boot
# in this script goes through the same pair, so the restart legs exercise
# exactly the production lifecycle.
drains=0
start_daemon() {
  : >"$workdir/addr"
  # JSON logs + a 1ms slow-query threshold: the tricolor solves comfortably
  # exceed it, so the correlated query below lands in /v1/slowlog.
  "$workdir/xrserved" -addr 127.0.0.1:0 -addr-file "$workdir/addr" \
    -log-format json -slow-query 1ms -data-dir "$data_dir" \
    >>"$server_log" 2>&1 &
  server_pid=$!
  for _ in $(seq 1 100); do
    [[ -s "$workdir/addr" ]] && break
    kill -0 "$server_pid" 2>/dev/null || fail "daemon exited before listening"
    sleep 0.1
  done
  [[ -s "$workdir/addr" ]] || fail "daemon never wrote -addr-file"
  base="http://$(cat "$workdir/addr")"
}

stop_daemon() {
  kill -TERM "$server_pid"
  wait "$server_pid" || fail "daemon exited non-zero on SIGTERM"
  server_pid=""
  drains=$((drains + 1))
  [[ "$(grep -c "drained cleanly" "$server_log")" == "$drains" ]] \
    || fail "missing clean-drain log line for boot $drains"
}

start_daemon
echo "serve-smoke: daemon at $base (data dir $data_dir)"

curl -fsS "$base/healthz" >/dev/null || fail "healthz unreachable"

# The Theorem 3 tricolor gadget (examples/tricolor), shared by both tenants.
mapping=$(cat <<'EOF'
source E(x, y, u, v).
source Cr(x).
source Cg(x).
source Cb(x).
source F(u, v).
target E1(x, y).
target F1(u, v).
target Fsrc(u, v).
target Cr1(x).
target Cg1(x).
target Cb1(x).

tgd E(x, y, u, v) & Cr(x) -> E1(x, y).
tgd E(x, y, u, v) & Cg(x) -> E1(x, y).
tgd E(x, y, u, v) & Cb(x) -> E1(x, y).
tgd E(x, y, u, v) & Cr(x) -> F1(u, v).
tgd E(x, y, u, v) & Cg(x) -> F1(u, v).
tgd E(x, y, u, v) & Cb(x) -> F1(u, v).
tgd Cr(x) -> Cr1(x).
tgd Cg(x) -> Cg1(x).
tgd Cb(x) -> Cb1(x).
tgd F(u, v) -> F1(u, v).
tgd F(u, v) -> Fsrc(u, v).
tgd trans: F1(u, v) & F1(v, w) -> F1(u, w).

egd E1(x, y) & Cr1(x) & Cr1(y) & F1(u, v) -> u = v.
egd E1(x, y) & Cg1(x) & Cg1(y) & F1(u, v) -> u = v.
egd E1(x, y) & Cb1(x) & Cb1(y) & F1(u, v) -> u = v.
egd F1(u, u) & F1(v, w) -> v = w.
EOF
)

k4_facts=$(cat <<'EOF'
E(a, b, n1, n2). E(c, a, n2, n3). E(d, a, n3, n4).
E(b, c, n4, n5). E(b, d, n5, n6). E(c, d, n6, n7).
Cr(a). Cg(a). Cb(a).
Cr(b). Cg(b). Cb(b).
Cr(c). Cg(c). Cb(c).
Cr(d). Cg(d). Cb(d).
F(n7, n1).
EOF
)

k3_facts=$(cat <<'EOF'
E(a, b, n1, n2). E(b, c, n2, n3). E(c, a, n3, n4).
Cr(a). Cg(a). Cb(a).
Cr(b). Cg(b). Cb(b).
Cr(c). Cg(c). Cb(c).
F(n4, n1).
EOF
)

# Load both scenarios concurrently: the daemon must host ≥2 tenants at once.
echo "serve-smoke: loading tri-k4 and tri-k3 concurrently"
jq -n --arg m "$mapping" --arg f "$k4_facts" \
  '{name:"tri-k4", mapping:$m, facts:$f, queries:"inAllRepairs() :- Fsrc(n7, n1).\n"}' \
  >"$workdir/k4.json"
jq -n --arg m "$mapping" --arg f "$k3_facts" \
  '{name:"tri-k3", mapping:$m, facts:$f, queries:"inAllRepairs() :- Fsrc(n4, n1).\n"}' \
  >"$workdir/k3.json"
curl -fsS -X POST -d @"$workdir/k4.json" "$base/v1/scenarios" >"$workdir/load_k4.json" &
load_k4=$!
curl -fsS -X POST -d @"$workdir/k3.json" "$base/v1/scenarios" >"$workdir/load_k3.json" &
load_k3=$!
wait "$load_k4" || fail "loading tri-k4"
wait "$load_k3" || fail "loading tri-k3"

count=$(curl -fsS "$base/v1/scenarios" | jq '.scenarios | length')
[[ "$count" == "2" ]] || fail "scenario count = $count, want 2"

# K4 is not 3-colorable: the marker fact is in every source repair, so the
# boolean query is XR-certain — exactly one empty tuple. K3 is 3-colorable:
# no certain answer. Assert the exact tuple bodies (the same answers the
# library path computes; internal/server tests pin byte-identity).
q4=$(curl -fsS -X POST -d '{"name":"inAllRepairs"}' "$base/v1/scenarios/tri-k4/query")
[[ "$(jq -c '.answers.tuples' <<<"$q4")" == "[[]]" ]] \
  || fail "tri-k4 tuples = $(jq -c '.answers.tuples' <<<"$q4"), want [[]]"
[[ "$(jq '.answers.degraded_signatures' <<<"$q4")" == "0" ]] \
  || fail "tri-k4 unexpectedly degraded: $q4"

q3=$(curl -fsS -X POST -d '{"name":"inAllRepairs"}' "$base/v1/scenarios/tri-k3/query")
[[ "$(jq -c '.answers.tuples' <<<"$q3")" == "[]" ]] \
  || fail "tri-k3 tuples = $(jq -c '.answers.tuples' <<<"$q3"), want []"

# Graceful degradation over the wire: a one-decision budget cannot decide
# the conflicted signatures, yet the response is HTTP 200 with the
# signatures reported degraded and the undecided tuple ?-marked (in the
# unknown set) — a sound partial answer, not an error.
deg=$(curl -fsS -X POST -d '{"name":"inAllRepairs","max_decisions":1}' \
  "$base/v1/scenarios/tri-k4/query")
[[ "$(jq '.partial' <<<"$deg")" == "true" ]] || fail "budgeted query not partial: $deg"
[[ "$(jq '.answers.degraded_signatures' <<<"$deg")" -ge 1 ]] \
  || fail "budgeted query reports no degraded signatures: $deg"
[[ "$(jq -c '.answers.unknown' <<<"$deg")" == "[[]]" ]] \
  || fail "budgeted query unknown = $(jq -c '.answers.unknown' <<<"$deg"), want [[]]"

# The same degraded query as an NDJSON stream must ?-mark the unknown row.
stream=$(curl -fsS -X POST -H 'Accept: application/x-ndjson' \
  -d '{"name":"inAllRepairs","max_decisions":1}' "$base/v1/scenarios/tri-k4/query")
grep -q '"frame":"unknown","mark":"?"' <<<"$stream" \
  || fail "stream lacks ?-marked unknown frame: $stream"
grep -q '"frame":"end"' <<<"$stream" || fail "stream not terminated: $stream"

# Per-tenant metrics are exposed on the same mux. Capture the body before
# grepping: `curl | grep -q` races (grep exits on match, curl dies with
# EPIPE, and pipefail turns that into a spurious failure).
metrics=$(curl -fsS "$base/metrics")
grep -q 'xr_server_queries_total{mode="certain",scenario="tri-k4"}' <<<"$metrics" \
  || fail "metrics missing per-tenant series"

# The tenant's queries ran through the engine, so the solver series —
# including the persistent-solver (DESIGN.md §17) counters — must be
# exported and moving: reuse is observable from xrserved, not only from
# the library.
for series in xr_solver_decisions_total xr_solver_reuse_builds_total \
  xr_solver_reuse_sessions_total xr_solver_assumption_solves_total; do
  grep -q "^$series" <<<"$metrics" \
    || fail "metrics missing solver series $series"
  [[ "$(awk -v s="$series" '$1 == s {print $2}' <<<"$metrics")" != "0" ]] \
    || fail "solver series $series never moved"
done

# --- Request observability: the full correlation chain off ONE request. ---
# A single slow query must be traceable end to end by its X-Request-Id:
# response header == response body == JSON access log == /v1/slowlog
# entry == fetched span tree, and the RED counter increments.
rid="smoke-corr-1"
echo "serve-smoke: driving correlation chain as $rid"
slow=$(curl -fsS -D "$workdir/corr_headers" -X POST -H "X-Request-Id: $rid" \
  -d '{"name":"inAllRepairs"}' "$base/v1/scenarios/tri-k4/query?trace=1")
grep -qi "^x-request-id: $rid" "$workdir/corr_headers" \
  || fail "response header X-Request-Id != $rid: $(cat "$workdir/corr_headers")"
[[ "$(jq -r '.request_id' <<<"$slow")" == "$rid" ]] \
  || fail "response body request_id != $rid: $slow"
[[ "$(jq '.trace | length' <<<"$slow")" -ge 1 ]] \
  || fail "?trace=1 returned no spans: $slow"

# The daemon writes its log/slowlog/trace-ring entries AFTER flushing the
# response, so poll briefly for the log lines; fromjson? tolerates a line
# the daemon is mid-write on. The rings are populated before their log
# lines, so once a line is visible the matching endpoint is consistent.
log_line() { # log_line <jq filter> — prints the last matching log object
  local filter=$1 out
  for _ in $(seq 1 40); do
    out=$(jq -c -R 'fromjson? // empty' "$server_log" | jq -c "select($filter)" | tail -n 1)
    if [[ -n "$out" ]]; then
      printf '%s\n' "$out"
      return 0
    fi
    sleep 0.05
  done
  return 1
}

# JSON access log: one structured line for the request, right fields.
access=$(log_line ".msg == \"request\" and .request_id == \"$rid\"") \
  || fail "no JSON access-log line for $rid"
[[ "$(jq -r '.route' <<<"$access")" == "/v1/scenarios/{name}/query" ]] \
  || fail "access log route: $access"
[[ "$(jq -r '.tenant' <<<"$access")" == "tri-k4" ]] || fail "access log tenant: $access"
[[ "$(jq -r '.status' <<<"$access")" == "200" ]] || fail "access log status: $access"
[[ "$(jq '.decisions' <<<"$access")" -ge 1 ]] \
  || fail "access log lacks per-request solver work: $access"

# Slowlog: the 1ms threshold captured it (record + span tree) and the
# WARN line fired.
log_line ".msg == \"slow query\" and .request_id == \"$rid\"" >/dev/null \
  || fail "no WARN slow-query log line for $rid"
slowlog=$(curl -fsS "$base/v1/slowlog")
entry=$(jq -c ".entries[] | select(.request_id == \"$rid\")" <<<"$slowlog")
[[ -n "$entry" ]] || fail "/v1/slowlog has no entry for $rid: $slowlog"
[[ "$(jq '.trace | length' <<<"$entry")" -ge 1 ]] \
  || fail "slowlog entry lacks span tree: $entry"

# Trace ring: the span tree is fetchable by request ID and stamped with it.
trace=$(curl -fsS "$base/v1/requests/$rid/trace")
[[ "$(jq -r '.request_id' <<<"$trace")" == "$rid" ]] || fail "trace fetch id: $trace"
jq -e '.trace[].args[]? | select(.key == "request_id" and .value == "smoke-corr-1")' \
  <<<"$trace" >/dev/null || fail "span tree not stamped with request id: $trace"

# --- Workload hardness profile: the tricolor solves above forced real
# conflict-driven search, so the per-signature accounting must be live
# over the wire — nonzero conflicts, canonical signature keys, a working
# top-N/sort projection, the healthz aggregate, and the slowlog entry's
# hardest-signature keys. ---
profile=$(curl -fsS "$base/v1/scenarios/tri-k4/profile")
[[ "$(jq '.profile.solves' <<<"$profile")" -ge 1 ]] \
  || fail "profile records no solves: $profile"
[[ "$(jq '[.profile.signatures[].conflicts] | add' <<<"$profile")" -ge 1 ]] \
  || fail "tricolor signatures show no conflicts: $profile"
jq -e '.profile.signatures[0].key != "" and (.profile.clusters | length) >= 1' \
  <<<"$profile" >/dev/null || fail "profile lacks signature keys or cluster shapes: $profile"
top1=$(curl -fsS "$base/v1/scenarios/tri-k4/profile?top=1&sort=conflicts")
[[ "$(jq '.profile.signatures | length' <<<"$top1")" == "1" ]] \
  || fail "profile top=1 did not truncate: $top1"
[[ "$(jq '.hot_signatures | length' <<<"$entry")" -ge 1 ]] \
  || fail "slowlog entry lacks hot signature keys: $entry"
curl -fsS "$base/healthz" | jq -e '.profile.scenarios >= 1 and .profile.solves >= 1' \
  >/dev/null || fail "healthz lacks the profile aggregate"
pre_solves=$(jq '.profile.solves' <<<"$profile")

# RED metrics: the per-route counter incremented for this tenant.
metrics=$(curl -fsS "$base/metrics")
grep -q 'xr_http_requests_total{code="200",route="/v1/scenarios/{name}/query",tenant="tri-k4"}' \
  <<<"$metrics" || fail "metrics missing RED series for the query route"

# Live introspection is mounted (the listing includes at least itself).
curl -fsS "$base/v1/inflight" | jq -e '.requests | length >= 1' >/dev/null \
  || fail "/v1/inflight empty or unreachable"

# Enriched health document keeps its status-code semantics.
curl -fsS "$base/healthz" | jq -e '.uptime_seconds >= 0 and .version != ""' >/dev/null \
  || fail "healthz missing uptime/version"

# Both tenants persisted to the data dir.
curl -fsS "$base/v1/store" | jq -e '.enabled and .store.persisted == 2 and .store.dirty == 0' \
  >/dev/null || fail "/v1/store does not track both tenants"

# Graceful drain: SIGTERM lets the daemon exit 0 with nothing in flight.
stop_daemon

# --- Crash-safe persistence: reboot over the same data dir. Both tenants
# must come back with ZERO re-POSTs and answer identically. ---
echo "serve-smoke: rebooting from $data_dir"
start_daemon
count=$(curl -fsS "$base/v1/scenarios" | jq '.scenarios | length')
[[ "$count" == "2" ]] || fail "after restart scenario count = $count, want 2 (no re-POSTs)"

# The drain persisted each tenant's workload profile beside its snapshot;
# the reboot must restore the pre-restart cumulative accounting exactly —
# no queries have run yet on this boot.
grep -q '"msg":"workload profile restored"' "$server_log" \
  || fail "no profile-restored log line after reboot"
profile_r=$(curl -fsS "$base/v1/scenarios/tri-k4/profile")
[[ "$(jq '.profile.solves' <<<"$profile_r")" == "$pre_solves" ]] \
  || fail "restored profile solves = $(jq '.profile.solves' <<<"$profile_r"), want pre-restart $pre_solves"

q4r=$(curl -fsS -X POST -d '{"name":"inAllRepairs"}' "$base/v1/scenarios/tri-k4/query")
[[ "$(jq -c '.answers.tuples' <<<"$q4r")" == "$(jq -c '.answers.tuples' <<<"$q4")" ]] \
  || fail "tri-k4 answers differ after restart: $q4r"
q3r=$(curl -fsS -X POST -d '{"name":"inAllRepairs"}' "$base/v1/scenarios/tri-k3/query")
[[ "$(jq -c '.answers.tuples' <<<"$q3r")" == "$(jq -c '.answers.tuples' <<<"$q3")" ]] \
  || fail "tri-k3 answers differ after restart: $q3r"
curl -fsS "$base/v1/store" | jq -e '.store.persisted == 2 and .store.quarantined == 0' \
  >/dev/null || fail "/v1/store wrong after restart"
curl -fsS "$base/healthz" | jq -e '.store.persisted == 2 and .store.data_dir != ""' \
  >/dev/null || fail "healthz store block wrong after restart"
grep -q '"msg":"scenario recovery complete"' "$server_log" \
  || fail "no recovery summary log line"

# This boot's queries accrue ON TOP of the restored history, and the
# cumulative document is kept as a CI artifact at a stable path.
curl -fsS "$base/v1/scenarios/tri-k4/profile" >"$profile_out" \
  || fail "fetching the cumulative profile artifact"
[[ "$(jq '.profile.solves' "$profile_out")" -gt "$pre_solves" ]] \
  || fail "post-restart queries did not accrue onto the restored profile: $(cat "$profile_out")"
stop_daemon

# --- Corruption: damage one snapshot in place. Boot must still succeed,
# quarantining exactly that tenant and leaving the name loadable. ---
snap="$data_dir/scenarios/tri-k3/snapshot.xr"
[[ -f "$snap" ]] || fail "expected snapshot at $snap"
echo "serve-smoke: corrupting $snap in place"
printf 'ROTROTROT' | dd of="$snap" bs=1 seek=100 conv=notrunc status=none
start_daemon
count=$(curl -fsS "$base/v1/scenarios" | jq '.scenarios | length')
[[ "$count" == "1" ]] || fail "after corruption scenario count = $count, want 1"
store=$(curl -fsS "$base/v1/store")
jq -e '.store.persisted == 1 and .store.quarantined == 1' <<<"$store" >/dev/null \
  || fail "/v1/store after corruption: $store"
jq -e '.store.quarantine | length == 1 and .[0].name == "tri-k3" and .[0].id != ""' \
  <<<"$store" >/dev/null || fail "quarantine record wrong: $store"
curl -fsS "$base/healthz" | jq -e '.store.quarantined == 1' >/dev/null \
  || fail "healthz does not report the quarantine"
jq -c -R 'fromjson? // empty' "$server_log" \
  | jq -se 'map(select(.msg == "scenario quarantined" and .level == "ERROR" and .request_id != "")) | length >= 1' \
  >/dev/null || fail "no structured ERROR line for the quarantine"
# The healthy tenant still answers; the damaged one 404s but loads fresh.
q4c=$(curl -fsS -X POST -d '{"name":"inAllRepairs"}' "$base/v1/scenarios/tri-k4/query")
[[ "$(jq -c '.answers.tuples' <<<"$q4c")" == "[[]]" ]] \
  || fail "tri-k4 broken by sibling corruption: $q4c"
code=$(curl -s -o /dev/null -w '%{http_code}' -X POST -d '{"name":"inAllRepairs"}' \
  "$base/v1/scenarios/tri-k3/query")
[[ "$code" == "404" ]] || fail "quarantined tenant served $code, want 404"
curl -fsS -X POST -d @"$workdir/k3.json" "$base/v1/scenarios" >/dev/null \
  || fail "re-loading the quarantined tenant name"
q3c=$(curl -fsS -X POST -d '{"name":"inAllRepairs"}' "$base/v1/scenarios/tri-k3/query")
[[ "$(jq -c '.answers.tuples' <<<"$q3c")" == "[]" ]] \
  || fail "re-loaded tri-k3 answers wrong: $q3c"
curl -fsS "$base/v1/store" | jq -e '.store.persisted == 2' >/dev/null \
  || fail "re-loaded tenant not re-persisted"
stop_daemon

echo "serve-smoke: PASS"
