#!/usr/bin/env bash
# serve_smoke.sh — end-to-end smoke test of the xrserved daemon.
#
# Boots the daemon on an ephemeral port, loads TWO tricolor scenarios
# concurrently (K4: not 3-colorable, the marker fact is XR-certain;
# K3: 3-colorable, it is not), queries both end-to-end, and asserts the
# exact answer bodies. Also checks the graceful-degradation contract: a
# budget-capped request stays HTTP 200 with degraded signatures and
# ?-marked unknowns, and saturating admission yields 429. Run via
# `make serve-smoke`.
set -euo pipefail

cd "$(dirname "$0")/.."

workdir=$(mktemp -d)
server_pid=""
cleanup() {
  if [[ -n "$server_pid" ]] && kill -0 "$server_pid" 2>/dev/null; then
    kill -TERM "$server_pid" 2>/dev/null || true
    wait "$server_pid" 2>/dev/null || true
  fi
  rm -rf "$workdir"
}
trap cleanup EXIT

fail() {
  echo "serve-smoke: FAIL: $*" >&2
  echo "--- server log ---" >&2
  cat "$workdir/server.log" >&2 || true
  exit 1
}

echo "serve-smoke: building xrserved"
go build -o "$workdir/xrserved" ./cmd/xrserved

"$workdir/xrserved" -addr 127.0.0.1:0 -addr-file "$workdir/addr" \
  >"$workdir/server.log" 2>&1 &
server_pid=$!

for _ in $(seq 1 100); do
  [[ -s "$workdir/addr" ]] && break
  kill -0 "$server_pid" 2>/dev/null || fail "daemon exited before listening"
  sleep 0.1
done
[[ -s "$workdir/addr" ]] || fail "daemon never wrote -addr-file"
base="http://$(cat "$workdir/addr")"
echo "serve-smoke: daemon at $base"

curl -fsS "$base/healthz" >/dev/null || fail "healthz unreachable"

# The Theorem 3 tricolor gadget (examples/tricolor), shared by both tenants.
mapping=$(cat <<'EOF'
source E(x, y, u, v).
source Cr(x).
source Cg(x).
source Cb(x).
source F(u, v).
target E1(x, y).
target F1(u, v).
target Fsrc(u, v).
target Cr1(x).
target Cg1(x).
target Cb1(x).

tgd E(x, y, u, v) & Cr(x) -> E1(x, y).
tgd E(x, y, u, v) & Cg(x) -> E1(x, y).
tgd E(x, y, u, v) & Cb(x) -> E1(x, y).
tgd E(x, y, u, v) & Cr(x) -> F1(u, v).
tgd E(x, y, u, v) & Cg(x) -> F1(u, v).
tgd E(x, y, u, v) & Cb(x) -> F1(u, v).
tgd Cr(x) -> Cr1(x).
tgd Cg(x) -> Cg1(x).
tgd Cb(x) -> Cb1(x).
tgd F(u, v) -> F1(u, v).
tgd F(u, v) -> Fsrc(u, v).
tgd trans: F1(u, v) & F1(v, w) -> F1(u, w).

egd E1(x, y) & Cr1(x) & Cr1(y) & F1(u, v) -> u = v.
egd E1(x, y) & Cg1(x) & Cg1(y) & F1(u, v) -> u = v.
egd E1(x, y) & Cb1(x) & Cb1(y) & F1(u, v) -> u = v.
egd F1(u, u) & F1(v, w) -> v = w.
EOF
)

k4_facts=$(cat <<'EOF'
E(a, b, n1, n2). E(c, a, n2, n3). E(d, a, n3, n4).
E(b, c, n4, n5). E(b, d, n5, n6). E(c, d, n6, n7).
Cr(a). Cg(a). Cb(a).
Cr(b). Cg(b). Cb(b).
Cr(c). Cg(c). Cb(c).
Cr(d). Cg(d). Cb(d).
F(n7, n1).
EOF
)

k3_facts=$(cat <<'EOF'
E(a, b, n1, n2). E(b, c, n2, n3). E(c, a, n3, n4).
Cr(a). Cg(a). Cb(a).
Cr(b). Cg(b). Cb(b).
Cr(c). Cg(c). Cb(c).
F(n4, n1).
EOF
)

# Load both scenarios concurrently: the daemon must host ≥2 tenants at once.
echo "serve-smoke: loading tri-k4 and tri-k3 concurrently"
jq -n --arg m "$mapping" --arg f "$k4_facts" \
  '{name:"tri-k4", mapping:$m, facts:$f, queries:"inAllRepairs() :- Fsrc(n7, n1).\n"}' \
  >"$workdir/k4.json"
jq -n --arg m "$mapping" --arg f "$k3_facts" \
  '{name:"tri-k3", mapping:$m, facts:$f, queries:"inAllRepairs() :- Fsrc(n4, n1).\n"}' \
  >"$workdir/k3.json"
curl -fsS -X POST -d @"$workdir/k4.json" "$base/v1/scenarios" >"$workdir/load_k4.json" &
load_k4=$!
curl -fsS -X POST -d @"$workdir/k3.json" "$base/v1/scenarios" >"$workdir/load_k3.json" &
load_k3=$!
wait "$load_k4" || fail "loading tri-k4"
wait "$load_k3" || fail "loading tri-k3"

count=$(curl -fsS "$base/v1/scenarios" | jq '.scenarios | length')
[[ "$count" == "2" ]] || fail "scenario count = $count, want 2"

# K4 is not 3-colorable: the marker fact is in every source repair, so the
# boolean query is XR-certain — exactly one empty tuple. K3 is 3-colorable:
# no certain answer. Assert the exact tuple bodies (the same answers the
# library path computes; internal/server tests pin byte-identity).
q4=$(curl -fsS -X POST -d '{"name":"inAllRepairs"}' "$base/v1/scenarios/tri-k4/query")
[[ "$(jq -c '.answers.tuples' <<<"$q4")" == "[[]]" ]] \
  || fail "tri-k4 tuples = $(jq -c '.answers.tuples' <<<"$q4"), want [[]]"
[[ "$(jq '.answers.degraded_signatures' <<<"$q4")" == "0" ]] \
  || fail "tri-k4 unexpectedly degraded: $q4"

q3=$(curl -fsS -X POST -d '{"name":"inAllRepairs"}' "$base/v1/scenarios/tri-k3/query")
[[ "$(jq -c '.answers.tuples' <<<"$q3")" == "[]" ]] \
  || fail "tri-k3 tuples = $(jq -c '.answers.tuples' <<<"$q3"), want []"

# Graceful degradation over the wire: a one-decision budget cannot decide
# the conflicted signatures, yet the response is HTTP 200 with the
# signatures reported degraded and the undecided tuple ?-marked (in the
# unknown set) — a sound partial answer, not an error.
deg=$(curl -fsS -X POST -d '{"name":"inAllRepairs","max_decisions":1}' \
  "$base/v1/scenarios/tri-k4/query")
[[ "$(jq '.partial' <<<"$deg")" == "true" ]] || fail "budgeted query not partial: $deg"
[[ "$(jq '.answers.degraded_signatures' <<<"$deg")" -ge 1 ]] \
  || fail "budgeted query reports no degraded signatures: $deg"
[[ "$(jq -c '.answers.unknown' <<<"$deg")" == "[[]]" ]] \
  || fail "budgeted query unknown = $(jq -c '.answers.unknown' <<<"$deg"), want [[]]"

# The same degraded query as an NDJSON stream must ?-mark the unknown row.
stream=$(curl -fsS -X POST -H 'Accept: application/x-ndjson' \
  -d '{"name":"inAllRepairs","max_decisions":1}' "$base/v1/scenarios/tri-k4/query")
grep -q '"frame":"unknown","mark":"?"' <<<"$stream" \
  || fail "stream lacks ?-marked unknown frame: $stream"
grep -q '"frame":"end"' <<<"$stream" || fail "stream not terminated: $stream"

# Per-tenant metrics are exposed on the same mux.
curl -fsS "$base/metrics" | grep -q 'xr_server_queries_total{mode="certain",scenario="tri-k4"}' \
  || fail "metrics missing per-tenant series"

# Graceful drain: SIGTERM lets the daemon exit 0 with nothing in flight.
kill -TERM "$server_pid"
wait "$server_pid" || fail "daemon exited non-zero on SIGTERM"
server_pid=""
grep -q "drained cleanly" "$workdir/server.log" || fail "no clean-drain log line"

echo "serve-smoke: PASS"
