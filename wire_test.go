package repro

import (
	"bytes"
	"encoding/json"
	"errors"
	"flag"
	"os"
	"path/filepath"
	"reflect"
	"testing"
	"time"

	"repro/internal/xr"
)

// The wire format is a compatibility contract: cmd/xrserved serves these
// types over HTTP, so field names and shapes must stay stable. The golden
// files under testdata/wire pin the exact bytes; regenerate deliberately
// with `go test -run TestWire -update` after an intentional change.

var updateGolden = flag.Bool("update", false, "rewrite golden wire-format files")

// checkGolden marshals v with stable indentation and compares it to the
// named golden file, then round-trips the bytes back into out (a pointer
// of v's type) so the caller can verify semantic equality.
func checkGolden(t *testing.T, name string, v, out interface{}) {
	t.Helper()
	got, err := json.MarshalIndent(v, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	got = append(got, '\n')
	path := filepath.Join("testdata", "wire", name)
	if *updateGolden {
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, got, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("%v (run `go test -run TestWire -update` to create)", err)
	}
	if !bytes.Equal(got, want) {
		t.Errorf("%s: wire format drifted from golden file.\ngot:\n%s\nwant:\n%s", name, got, want)
	}
	if err := json.Unmarshal(got, out); err != nil {
		t.Fatalf("%s: round-trip unmarshal: %v", name, err)
	}
}

// TestWireAnswers pins the Answers wire format, including nested
// SignatureError and Explanation entries, and checks the round trip
// preserves every field (the Degraded cause survives as a matching
// sentinel under errors.Is).
func TestWireAnswers(t *testing.T) {
	in := &Answers{
		Tuples:  [][]string{{"tx2", "7"}, {"tx9", "1"}},
		Unknown: [][]string{{"tx5", "2"}},
		Degraded: []SignatureError{
			{Signature: "2,7", Tuples: 1, Retries: 1, Err: ErrBudget},
		},
		Explanations: []Explanation{
			{
				Query:     "q",
				Tuple:     []string{"tx2", "7"},
				Verdict:   "certain",
				Signature: "2,7",
				Text:      "q(tx2, 7): certain — accepted by cautious reasoning\n",
			},
			{
				Query:   "q",
				Tuple:   []string{"tx5", "2"},
				Verdict: "unknown",
				Cause:   "budget",
				Retries: 1,
				Text:    "q(tx5, 2): unknown — signature {2,7} degraded (budget)\n",
			},
		},
		Candidates:         3,
		SafeAccepted:       1,
		SolverAccepted:     1,
		Programs:           2,
		CacheHits:          1,
		DegradedSignatures: 1,
		UnknownTuples:      1,
		Retries:            1,
		Duration:           1500 * time.Microsecond,
	}
	var out Answers
	checkGolden(t, "answers.golden.json", in, &out)

	if !reflect.DeepEqual(out.Tuples, in.Tuples) || !reflect.DeepEqual(out.Unknown, in.Unknown) {
		t.Errorf("tuples round trip: got %v / %v", out.Tuples, out.Unknown)
	}
	if !reflect.DeepEqual(out.Explanations, in.Explanations) {
		t.Errorf("explanations round trip: got %+v", out.Explanations)
	}
	if out.Duration != in.Duration || out.Candidates != in.Candidates || out.CacheHits != in.CacheHits {
		t.Errorf("stats round trip: got %+v", out)
	}
	if len(out.Degraded) != 1 {
		t.Fatalf("degraded round trip: got %+v", out.Degraded)
	}
	d := out.Degraded[0]
	if d.Signature != "2,7" || d.Tuples != 1 || d.Retries != 1 {
		t.Errorf("degraded fields: got %+v", d)
	}
	if !errors.Is(d.Err, ErrBudget) {
		t.Errorf("degraded cause: err = %v, want ErrBudget under errors.Is", d.Err)
	}
}

// TestWireSignatureErrorCauses checks every degradation cause survives the
// wire round trip as its matching sentinel.
func TestWireSignatureErrorCauses(t *testing.T) {
	for _, tc := range []struct {
		cause    string
		err      error
		sentinel error
	}{
		{"budget", ErrBudget, ErrBudget},
		{"timeout", ErrTimeout, ErrTimeout},
		{"canceled", ErrCanceled, ErrCanceled},
		{"panic", &InternalError{Op: "segmentary signature {3}", Panic: "boom"}, ErrInternal},
	} {
		in := SignatureError{Signature: "3", Tuples: 2, Retries: 1, Err: tc.err}
		b, err := json.Marshal(in)
		if err != nil {
			t.Fatalf("%s: %v", tc.cause, err)
		}
		var m map[string]interface{}
		if err := json.Unmarshal(b, &m); err != nil {
			t.Fatal(err)
		}
		if m["cause"] != tc.cause {
			t.Errorf("cause = %v, want %q (wire: %s)", m["cause"], tc.cause, b)
		}
		var out SignatureError
		if err := json.Unmarshal(b, &out); err != nil {
			t.Fatal(err)
		}
		if !errors.Is(out.Err, tc.sentinel) {
			t.Errorf("%s: round-tripped err = %v, does not match sentinel", tc.cause, out.Err)
		}
		if out.Signature != in.Signature || out.Tuples != in.Tuples || out.Retries != in.Retries {
			t.Errorf("%s: fields = %+v", tc.cause, out)
		}
	}
}

// TestWireTraceEvent pins the TraceEvent wire format.
func TestWireTraceEvent(t *testing.T) {
	in := TraceEvent{
		Engine:           "segmentary",
		Query:            "q",
		Signature:        []int{2, 7},
		SignatureKey:     "2,7",
		RequestID:        "req-0011aabb",
		Candidates:       3,
		Atoms:            120,
		Rules:            240,
		CacheHit:         true,
		CandidatesTested: 5,
		StabilityFails:   1,
		LoopsLearned:     2,
		TheoryRejects:    1,
		Conflicts:        17,
		Decisions:        42,
		Propagations:     900,
		Restarts:         1,
		Duration:         250 * time.Microsecond,
	}
	var out TraceEvent
	checkGolden(t, "trace_event.golden.json", in, &out)
	if !reflect.DeepEqual(out, in) {
		t.Errorf("round trip: got %+v, want %+v", out, in)
	}
}

// TestWireExchangeStats pins the xr.ExchangeStats wire format.
func TestWireExchangeStats(t *testing.T) {
	in := xr.ExchangeStats{
		SourceFacts:            100,
		TotalFacts:             180,
		Violations:             12,
		Clusters:               4,
		SuspectSource:          30,
		SafeDerivable:          140,
		ReduceDuration:         10 * time.Microsecond,
		ChaseDuration:          2 * time.Millisecond,
		EnvDuration:            500 * time.Microsecond,
		Duration:               3 * time.Millisecond,
		ChaseRounds:            5,
		ChaseRuleEvals:         60,
		ChaseRuleSkips:         40,
		ChaseTriggers:          200,
		ChaseDeltaFacts:        80,
		IndexProbes:            1234,
		IndexBuilds:            7,
		ChaseTgdDuration:       1500 * time.Microsecond,
		ChaseViolationDuration: 500 * time.Microsecond,
	}
	var out xr.ExchangeStats
	checkGolden(t, "exchange_stats.golden.json", in, &out)
	if !reflect.DeepEqual(out, in) {
		t.Errorf("round trip: got %+v, want %+v", out, in)
	}
}

// TestWireLiveAnswers marshals the result of a real degraded query and
// checks the wire round trip preserves the answer and unknown sets — the
// exact path a server response takes.
func TestWireLiveAnswers(t *testing.T) {
	sys, in, qs := setup(t)
	ex, err := sys.NewExchange(in)
	if err != nil {
		t.Fatal(err)
	}
	ans, err := ex.Answer(qs[0], WithSolveBudget(1, 0), WithPartialResults(true))
	if err != nil {
		t.Fatal(err)
	}
	if !ans.Partial() {
		t.Fatal("expected a degraded run under a 1-decision budget")
	}
	b, err := json.Marshal(ans)
	if err != nil {
		t.Fatal(err)
	}
	var out Answers
	if err := json.Unmarshal(b, &out); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(out.Tuples, ans.Tuples) || !reflect.DeepEqual(out.Unknown, ans.Unknown) {
		t.Errorf("round trip: got %v / %v, want %v / %v", out.Tuples, out.Unknown, ans.Tuples, ans.Unknown)
	}
	if len(out.Degraded) != len(ans.Degraded) {
		t.Fatalf("degraded round trip: %d vs %d", len(out.Degraded), len(ans.Degraded))
	}
	for i := range out.Degraded {
		if !errors.Is(out.Degraded[i].Err, ErrBudget) {
			t.Errorf("degraded[%d]: err = %v, want ErrBudget", i, out.Degraded[i].Err)
		}
	}
	// Empty sets stay [] on the wire, never null.
	empty, err := json.Marshal(&Answers{Tuples: [][]string{}, Unknown: [][]string{}})
	if err != nil {
		t.Fatal(err)
	}
	if bytes.Contains(empty, []byte("null")) {
		t.Errorf("empty Answers marshals with null: %s", empty)
	}
}
