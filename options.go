package repro

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"time"

	"repro/internal/profile"
	"repro/internal/telemetry"
	"repro/internal/xr"
)

// Typed sentinel errors returned (possibly wrapped) by the query engines;
// match them with errors.Is.
var (
	// ErrTimeout reports that a query exceeded its WithTimeout budget or a
	// context deadline.
	ErrTimeout = xr.ErrTimeout
	// ErrCanceled reports that a WithContext context was canceled.
	ErrCanceled = xr.ErrCanceled
	// ErrNoSolution reports that an instance admits no solution where one
	// is required (Materialize on an inconsistent instance).
	ErrNoSolution = xr.ErrNoSolution
	// ErrTooLarge reports that an instance exceeds the brute-force engines'
	// exhaustive-enumeration bound (22 source facts).
	ErrTooLarge = xr.ErrTooLarge
	// ErrBudget reports that a signature's solver exhausted its
	// WithSolveBudget decision/conflict allowance.
	ErrBudget = xr.ErrBudget
	// ErrInternal reports a panic contained inside an engine worker; the
	// concrete error is an *xr.InternalError carrying the captured stack.
	ErrInternal = xr.ErrInternal
)

// ErrOptionScope reports that an option was passed to a call outside its
// scope: a query-scope option (e.g. WithTimeout) to NewExchange, or an
// exchange/query mismatch in general. The concrete error is an
// *OptionScopeError naming the option and the call. Before the scope
// split such options were silently ignored; failing fast keeps a tuning
// mistake from masquerading as a no-op.
var ErrOptionScope = errors.New("repro: option out of scope")

// OptionScopeError describes one out-of-scope option: which option, which
// call rejected it, and the scope the option actually has. It matches
// ErrOptionScope under errors.Is.
type OptionScopeError struct {
	Option string // option constructor name, e.g. "WithTimeout"
	Call   string // rejecting call, e.g. "NewExchange"
	Scope  string // the option's scope: "query" or "exchange"
}

func (e *OptionScopeError) Error() string {
	return fmt.Sprintf("repro: %s is a %s-scope option and does not apply to %s", e.Option, e.Scope, e.Call)
}

// Unwrap makes errors.Is(err, ErrOptionScope) hold.
func (e *OptionScopeError) Unwrap() error { return ErrOptionScope }

// SignatureError describes one signature group left undecided under
// WithPartialResults: the signature key, how many candidate tuples moved
// to Unknown, how many budget-doubling retries were attempted, and the
// underlying cause (matches ErrBudget, ErrTimeout, or ErrInternal under
// errors.Is).
type SignatureError = xr.SignatureError

// InternalError is a contained worker panic: the operation, the recovered
// panic value, and the goroutine stack at the point of the panic. It
// matches ErrInternal under errors.Is.
type InternalError = xr.InternalError

// TraceEvent is one per-program solver diagnostic record delivered to a
// WithSolverTrace hook; see the fields for the available counters.
type TraceEvent = xr.TraceEvent

// optionScope is the bitmask of call kinds an Option applies to.
type optionScope uint8

const (
	// scopeExchange marks options consulted by the exchange phase
	// (System.NewExchange).
	scopeExchange optionScope = 1 << iota
	// scopeQuery marks options consulted by the query-time calls
	// (Exchange.Answer / Possible / Repairs / Why, System.MonolithicAnswers,
	// System.BruteForceAnswers).
	scopeQuery
)

// String names the scope for error messages.
func (s optionScope) String() string {
	switch s {
	case scopeExchange:
		return "exchange"
	case scopeQuery:
		return "query"
	default:
		return "exchange+query"
	}
}

// Option tunes one engine call. Every option belongs to a scope —
// exchange-time (System.NewExchange) or query-time (Exchange.Answer /
// Possible / Repairs / Why, System.MonolithicAnswers,
// System.BruteForceAnswers) — and each constructor's doc comment states
// its scope. Passing an option to a call outside its scope returns an
// error matching ErrOptionScope instead of silently doing nothing.
// WithMetrics and WithTracer carry both scopes.
type Option struct {
	name  string
	scope optionScope
	apply func(*xr.Options)
}

// queryOption builds a query-scope option.
func queryOption(name string, apply func(*xr.Options)) Option {
	return Option{name: name, scope: scopeQuery, apply: apply}
}

// exchangeOption builds an exchange-scope option.
func exchangeOption(name string, apply func(*xr.Options)) Option {
	return Option{name: name, scope: scopeExchange, apply: apply}
}

// dualOption builds an option valid at both exchange and query time.
func dualOption(name string, apply func(*xr.Options)) Option {
	return Option{name: name, scope: scopeExchange | scopeQuery, apply: apply}
}

// WithContext attaches a context to the call: cancellation stops in-flight
// solver work cooperatively and the call returns an error matching
// ErrCanceled (or ErrTimeout for a deadline). Scope: query.
func WithContext(ctx context.Context) Option {
	return queryOption("WithContext", func(o *xr.Options) { o.Ctx = ctx })
}

// WithTimeout bounds the call's solving time; it composes with WithContext
// (whichever expires first wins). Zero means no limit. Scope: query.
func WithTimeout(d time.Duration) Option {
	return queryOption("WithTimeout", func(o *xr.Options) { o.Timeout = d })
}

// WithParallelism solves up to n independent programs concurrently —
// per-signature programs for the segmentary engine, per-query programs for
// the monolithic engine. n <= 0 selects GOMAXPROCS. Answers and stats
// totals are identical to a sequential run at any setting. Scope: query.
func WithParallelism(n int) Option {
	return queryOption("WithParallelism", func(o *xr.Options) {
		if n <= 0 {
			n = runtime.GOMAXPROCS(0)
		}
		o.Parallelism = n
	})
}

// WithSignatureTimeout bounds the solving time of each signature program
// individually (segmentary engine only). Unlike WithTimeout, which cancels
// the whole call, an expired signature timeout cuts off only that
// signature: without WithPartialResults the query fails with an error
// matching ErrTimeout; with it, the signature is recorded in
// Answers.Degraded and its candidate tuples move to Answers.Unknown while
// every sibling signature completes normally. Zero means no limit.
// Scope: query.
func WithSignatureTimeout(d time.Duration) Option {
	return queryOption("WithSignatureTimeout", func(o *xr.Options) { o.SignatureTimeout = d })
}

// WithSolveBudget caps the solver effort spent on each signature program:
// at most maxDecisions decisions and maxConflicts conflicts (zero means
// unlimited for that counter). Budgets are deterministic — unlike wall
// clocks they exhaust at the same point on every run and at any
// WithParallelism setting. An exhausted signature fails the query with an
// error matching ErrBudget, or degrades it under WithPartialResults (after
// one retry with the budget doubled, reusing the learned clauses cached
// from the first attempt). Scope: query.
func WithSolveBudget(maxDecisions, maxConflicts int64) Option {
	return queryOption("WithSolveBudget", func(o *xr.Options) {
		o.MaxDecisions = maxDecisions
		o.MaxConflicts = maxConflicts
	})
}

// WithPartialResults makes the segmentary engine return sound partial
// answers instead of failing when a signature exceeds WithSignatureTimeout
// or WithSolveBudget (or panics): the Answers it returns are a sound lower
// bound on the XR-Certain answers (every reported tuple is a certain
// answer), undecided tuples are listed in Answers.Unknown, and each
// skipped signature is described in Answers.Degraded. Skipping a signature
// can only lose answers, never fabricate them — see DESIGN.md §11 for the
// soundness argument. Cancellation of the whole call (WithContext /
// WithTimeout) still fails the query regardless of this option.
// Scope: query.
func WithPartialResults(on bool) Option {
	return queryOption("WithPartialResults", func(o *xr.Options) { o.Partial = on })
}

// WithSolverTrace installs a hook receiving one TraceEvent per program
// solved (candidates tested, loops learned, conflicts, cache hits, ...).
// The hook is called serially even when solving in parallel. Scope: query.
func WithSolverTrace(f func(TraceEvent)) Option {
	return queryOption("WithSolverTrace", func(o *xr.Options) { o.Trace = f })
}

// WithSolverReuse toggles the persistent per-signature solver (segmentary
// engine only; default on). With reuse on, each signature keeps one
// incremental CDCL solver alive across queries: candidates are decided by
// swapping assumption sessions, and everything the solver learns — CDCL
// learnt clauses, loop formulas, maximality clauses — legally carries
// from query to query (DESIGN.md §17). WithSolverReuse(false) selects the
// fresh-solve path: a throwaway solver per signature per query with
// learned-clause replay from the signature cache. Answers, Unknown sets,
// and explanations are identical either way at any WithParallelism
// setting; only solving effort differs. Scope: query.
func WithSolverReuse(on bool) Option {
	return queryOption("WithSolverReuse", func(o *xr.Options) { o.DisableSolverReuse = !on })
}

// WithExplanations makes Exchange.Answer / Possible attach one rendered
// Explanation per candidate tuple to the Answers (segmentary engine only):
// support closures and touched clusters for accepted tuples, a concrete
// counterexample exchange-repair for rejected ones, and the degradation
// cause for unknowns. Explanations are computed in a dedicated
// deterministic pass — one fresh solver per signature group, candidates
// decided in order as assumption sessions — so the output is
// byte-identical across runs, parallelism levels, signature-cache states,
// and WithSolverReuse modes. The pass costs one extra witness solve per
// non-safe candidate; Exchange.Why explains a single tuple.
// Scope: query.
func WithExplanations(on bool) Option {
	return queryOption("WithExplanations", func(o *xr.Options) { o.Explain = on })
}

// Tracer collects a hierarchical execution-trace span tree: exchange
// sub-phases (reduce, chase tgds/violations, envelopes), the query phase,
// and one child span per signature program, each attributed to the worker
// lane it ran on. Export the tree with WriteChromeTrace — the JSON loads
// in Chrome's about:tracing and in Perfetto. Safe for concurrent use; a
// nil *Tracer is a valid disabled tracer.
type Tracer = telemetry.Tracer

// NewTracer returns an empty Tracer whose epoch is "now".
func NewTracer() *Tracer { return telemetry.NewTracer() }

// WithTracer attaches a Tracer to the call: NewExchange records the
// exchange-phase breakdown, Answer/Possible record the query phase with
// per-signature child spans, and MonolithicAnswers records per-query
// spans. The same tracer may be shared across calls to build one timeline.
// Scope: exchange and query.
func WithTracer(t *Tracer) Option {
	return dualOption("WithTracer", func(o *xr.Options) { o.Tracer = t })
}

// Metrics is a registry of named counters, gauges, and latency histograms
// that the engines aggregate into when attached with WithMetrics. It is
// safe for concurrent use; counter totals are deterministic at any
// WithParallelism setting. Expose it with Snapshot (deterministic JSON),
// WritePrometheus (text exposition format), or ServeMetrics (HTTP).
type Metrics = telemetry.Registry

// NewMetrics returns an empty metrics registry.
func NewMetrics() *Metrics { return telemetry.NewRegistry() }

// MetricsSnapshot is the point-in-time JSON form of a Metrics registry.
type MetricsSnapshot = telemetry.Snapshot

// WithMetrics aggregates phase timings and solver counters into reg:
// exchange-phase stats (Table 4), per-query and per-program counts,
// signature-cache hits/misses, and the DPLL core's decisions, conflicts,
// propagations, and restarts. A nil registry disables collection at
// near-zero cost. The same registry may be shared across calls, engines,
// and goroutines. Scope: exchange and query.
func WithMetrics(reg *Metrics) Option {
	return dualOption("WithMetrics", func(o *xr.Options) { o.Metrics = reg })
}

// Profile is a deterministic point-in-time snapshot of an Exchange's
// workload hardness profiler: per-signature and per-cluster solve
// accounting (wall-time histograms with p50/p95/p99, DPLL work counters,
// retries/degradations/budget exhaustions, cache and solver-reuse hits,
// cluster shapes), keyed by the same signature-key vocabulary TraceEvent,
// SignatureError, and explanations use. Obtain one with Exchange.Profile;
// rank it with Profile.Top.
type Profile = profile.Snapshot

// ProfileSignature is one signature's record inside a Profile.
type ProfileSignature = profile.SignatureProfile

// ProfileCluster is one violation cluster's record inside a Profile.
type ProfileCluster = profile.ClusterProfile

// Sort orders accepted by Profile.Top (and the daemon's /profile
// endpoint's ?sort= parameter).
const (
	ProfileSortWall      = profile.SortWall
	ProfileSortConflicts = profile.SortConflicts
	ProfileSortDegraded  = profile.SortDegraded
)

// WithProfiling attaches a workload hardness profiler to the Exchange:
// every signature solve of every later query accumulates into
// per-signature and per-cluster records, retrievable as a deterministic
// snapshot via Exchange.Profile. Recording happens at the same
// instrumentation points telemetry uses, with commuting atomic updates
// only, so answers, Unknown sets, and ExchangeStats are byte-identical
// with profiling on or off at any WithParallelism setting; off (the
// default) costs one nil check per solve. When WithMetrics is also set,
// the profiler's own bookkeeping (records, evictions, total solves) is
// exported as xr_profile_* series. Scope: exchange.
func WithProfiling(on bool) Option {
	return exchangeOption("WithProfiling", func(o *xr.Options) { o.Profiling = on })
}

// WithProfileCap bounds the profiler's signature-record table at n
// records (0 keeps the default, profile.DefaultMaxRecords = 4096).
// Inserting past the cap evicts the coldest record — smallest decayed
// heat, ties toward the smallest key — and counts the eviction. Implies
// nothing by itself: profiling still needs WithProfiling(true).
// Scope: exchange.
func WithProfileCap(n int) Option {
	return exchangeOption("WithProfileCap", func(o *xr.Options) { o.ProfileMaxRecords = n })
}

// MetricsServer is a running HTTP metrics endpoint; see ServeMetrics.
type MetricsServer = telemetry.Server

// ServeMetrics starts an HTTP endpoint exposing reg on addr (":0" picks an
// ephemeral port — read Addr). It serves /metrics (Prometheus text),
// /metrics.json (deterministic snapshot), /debug/vars (expvar), and
// /debug/pprof/. Close the returned server to shut it down.
func ServeMetrics(addr string, reg *Metrics) (*MetricsServer, error) {
	return telemetry.Serve(addr, reg)
}

// buildOptions folds the options into the engine-level struct after
// checking each against the calling scope. An out-of-scope option yields
// an *OptionScopeError (matching ErrOptionScope) naming the option and
// the call.
func buildOptions(call string, allowed optionScope, opts []Option) (xr.Options, error) {
	var o xr.Options
	for _, opt := range opts {
		if opt.apply == nil {
			continue // the zero Option is a no-op
		}
		if opt.scope&allowed == 0 {
			return xr.Options{}, &OptionScopeError{Option: opt.name, Call: call, Scope: opt.scope.String()}
		}
		opt.apply(&o)
	}
	return o, nil
}
