# Tier-1 gate: vet plus the full test suite under the race detector.
# The parallel segmentary query phase and the signature-program cache are
# exercised concurrently by the tests, so -race is part of the gate.
# check also builds every command so CLI-only breakage cannot slip past.
.PHONY: check build test bench bench-smoke bench-diff lint fuzz fuzz-smoke chaos serve-smoke crash profile-smoke

check: fuzz-smoke crash profile-smoke
	go build ./cmd/...
	go vet ./...
	go test -race ./...

build:
	go build ./...

test:
	go test ./...

bench:
	go test -bench=. -benchmem

# bench-smoke regenerates the committed machine-readable report for the S3
# genome profile at scale 0.1 (small enough for CI, large enough that the
# instance is inconsistent and the solver counters are live).
bench-smoke:
	go run ./cmd/xrbench -json BENCH_S3.json -profile S3 -scale 0.1

# bench-diff reruns the S3 profile and diffs it against the committed
# baseline report; exits 4 when a wall time or work counter regresses by
# more than the threshold (wall times on shared CI hardware are noisy, so
# the default gate is generous).
bench-diff:
	go run ./cmd/xrbench -compare BENCH_S3.json -profile S3 -scale 0.1 -threshold 100

# fuzz runs each fuzzer for 30s (go's engine takes one fuzzer per
# invocation). fuzz-smoke is the 10s CI variant wired into check.
fuzz:
	go test -fuzz=FuzzParse -fuzztime=30s ./internal/asp/
	go test -fuzz=FuzzGround -fuzztime=30s ./internal/asp/
	go test -fuzz=FuzzAssumptions -fuzztime=30s ./internal/asp/
	go test -fuzz=FuzzParseMapping -fuzztime=30s ./internal/parser/
	go test -fuzz=FuzzParseFacts -fuzztime=30s ./internal/parser/
	go test -fuzz=FuzzParseQueries -fuzztime=30s ./internal/parser/

fuzz-smoke:
	go test -fuzz=FuzzParse -fuzztime=5s ./internal/asp/
	go test -fuzz=FuzzGround -fuzztime=5s ./internal/asp/
	go test -fuzz=FuzzAssumptions -fuzztime=5s ./internal/asp/

# serve-smoke boots the xrserved daemon on an ephemeral port, loads two
# tricolor scenarios concurrently, queries both end-to-end (asserting the
# exact answer bodies), exercises budget degradation with ?-marked
# unknowns over both framings, drives the request-observability chain
# (X-Request-Id through header, body, JSON access log, /v1/slowlog, and
# the span tree), and checks graceful SIGTERM drain. Requires curl and jq.
serve-smoke:
	bash scripts/serve_smoke.sh

# crash replays the crash-recovery harness under the race detector: 60
# seed-keyed trials that kill the scenario store at every filesystem
# injection point (including torn writes and post-crash bit rot), reboot,
# and require byte-identical answers from every committed tenant plus a
# quarantine — never a boot failure — for every damaged artifact.
crash:
	go test -race -count=1 -run 'Crash|Recover|Quarantine|Drain' \
		./internal/store/ ./internal/server/

# profile-smoke replays the workload-profiler contract under the race
# detector: byte-identical answers and counter aggregates with profiling
# on at Parallelism 1/4/8, concurrent multi-tenant top-N reads, eviction
# order, and the drain-persist / reboot-restore round trip (the crash
# target covers the store-level profile artifacts; this one focuses the
# profiler suites directly).
profile-smoke:
	go test -race -count=1 -run 'Profile' \
		./internal/profile/ ./internal/benchkit/ ./internal/store/ ./internal/server/

# chaos replays the fault-injection suite (budgets, timeouts, panics,
# cache corruption) under the race detector at high parallelism.
chaos:
	go test -race -count=1 -run 'Chaos|Fault|Degrad|Panic|Budget|Signature' \
		./internal/faultkit/ ./internal/xr/ ./internal/asp/

# lint runs staticcheck when it is installed and degrades gracefully when it
# is not (the container image does not bake it in). The grep gate is
# unconditional: the server and daemon log exclusively through slog, so a
# bare log.Print* would bypass the structured access log and its request
# IDs — reject it at lint time.
lint:
	@if grep -rnE '\blog\.(Print|Printf|Println|Fatal|Fatalf|Fatalln)\(' \
		internal/server cmd/xrserved; then \
		echo "lint: bare log.Print*/log.Fatal* in server code; use the injected *slog.Logger" >&2; \
		exit 1; \
	fi
	@if command -v staticcheck >/dev/null 2>&1; then \
		staticcheck ./...; \
	else \
		echo "lint: staticcheck not installed; skipping (go vet runs in 'make check')"; \
	fi
