# Tier-1 gate: vet plus the full test suite under the race detector.
# The parallel segmentary query phase and the signature-program cache are
# exercised concurrently by the tests, so -race is part of the gate.
# check also builds every command so CLI-only breakage cannot slip past.
.PHONY: check build test bench bench-smoke lint

check:
	go build ./cmd/...
	go vet ./...
	go test -race ./...

build:
	go build ./...

test:
	go test ./...

bench:
	go test -bench=. -benchmem

# bench-smoke regenerates the committed machine-readable report for the S3
# genome profile at scale 0.1 (small enough for CI, large enough that the
# instance is inconsistent and the solver counters are live).
bench-smoke:
	go run ./cmd/xrbench -json BENCH_S3.json -profile S3 -scale 0.1

# lint runs staticcheck when it is installed and degrades gracefully when it
# is not (the container image does not bake it in).
lint:
	@if command -v staticcheck >/dev/null 2>&1; then \
		staticcheck ./...; \
	else \
		echo "lint: staticcheck not installed; skipping (go vet runs in 'make check')"; \
	fi
