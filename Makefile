# Tier-1 gate: vet plus the full test suite under the race detector.
# The parallel segmentary query phase and the signature-program cache are
# exercised concurrently by the tests, so -race is part of the gate.
.PHONY: check build test bench

check:
	go vet ./...
	go test -race ./...

build:
	go build ./...

test:
	go test ./...

bench:
	go test -bench=. -benchmem
